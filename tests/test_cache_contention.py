"""Multi-process contention and crash-hygiene tests for ResultCache.

The cache is the shared substrate of every robustness feature in this
repo — parallel engine workers, the experiment-service daemon, and
resumed campaigns all read and write one directory concurrently. These
tests hammer a single cache root from several *processes* at once
(mixed get/put/clear) and assert the atomic-rename discipline holds:
no worker ever crashes, no reader ever observes a torn JSON entry, and
no orphaned temp file survives a vacuum.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness import ResultCache
from repro.harness.result_cache import MISS

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")

# Each hammer process loops over a small key space doing puts, gets,
# and the occasional clear, asserting every get returns either MISS or
# a *complete* entry (torn JSON would raise inside get and be counted
# as a miss — so the stronger check is re-parsing the files directly).
_HAMMER = """
import json, os, random, sys, time
sys.path.insert(0, {src!r})
from repro.harness import ResultCache
from repro.harness.result_cache import MISS

root, seed, deadline = sys.argv[1], int(sys.argv[2]), float(sys.argv[3])
rng = random.Random(seed)
cache = ResultCache(root, fingerprint="contention")
keys = [cache.key(point=i) for i in range(8)]
ops = 0
while time.time() < deadline:
    key = rng.choice(keys)
    roll = rng.random()
    if roll < 0.45:
        cache.put(key, {{"writer": seed, "ops": ops,
                         "payload": "x" * rng.randrange(1, 2048)}})
    elif roll < 0.9:
        value = cache.get(key)
        if value is not MISS:
            # a committed entry is always complete and well-shaped
            assert set(value) == {{"writer", "ops", "payload"}}, value
    else:
        cache.clear()
    ops += 1
print(ops)
"""


@pytest.mark.slow
def test_multiprocess_hammer_never_tears(tmp_path):
    root = tmp_path / "cache"
    deadline = time.time() + 3.0
    script = _HAMMER.format(src=REPO_SRC)
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script, str(root), str(seed),
             str(deadline)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        for seed in range(4)
    ]
    total_ops = 0
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, f"hammer crashed:\n{err}"
        total_ops += int(out.strip())
    assert total_ops > 0
    # every surviving entry parses — a torn write would be half a JSON
    # document under the final name, which atomic rename forbids
    for entry in root.glob("*/*.json"):
        json.loads(entry.read_text())
    # no temp files outlive the melee (crashless writers always clean
    # up; vacuum(0) would reap a kill -9's leavings)
    cache = ResultCache(root, fingerprint="contention")
    assert cache.vacuum(0.0) == 0
    assert len(cache) == sum(1 for _ in root.glob("*/*.json"))


def test_put_get_roundtrip_and_len(tmp_path):
    cache = ResultCache(tmp_path / "cache", fingerprint="t")
    key = cache.key(point=1)
    assert cache.get(key) is MISS
    cache.put(key, {"v": 1})
    assert cache.get(key) == {"v": 1}
    assert len(cache) == 1


def test_durable_put_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "cache", fingerprint="t",
                        durable=True)
    key = cache.key(point=2)
    cache.put(key, {"v": 2})
    assert cache.get(key) == {"v": 2}


class TestVacuum:
    def _orphan(self, root, name, age_s):
        sub = root / "ab"
        sub.mkdir(parents=True, exist_ok=True)
        tmp = sub / name
        tmp.write_text("half-written garbag")
        old = time.time() - age_s
        os.utime(tmp, (old, old))
        return tmp

    def test_vacuum_reaps_only_old_enough(self, tmp_path):
        root = tmp_path / "cache"
        cache = ResultCache(root, fingerprint="t")
        stale = self._orphan(root, "stale.tmp", age_s=7200)
        fresh = self._orphan(root, "fresh.tmp", age_s=0)
        assert cache.vacuum(3600.0) == 1
        assert not stale.exists() and fresh.exists()
        assert cache.vacuum(0.0) == 1
        assert not fresh.exists()

    def test_constructor_sweeps_stale_orphans(self, tmp_path):
        root = tmp_path / "cache"
        root.mkdir()
        stale = self._orphan(root, "stale.tmp", age_s=7200)
        fresh = self._orphan(root, "fresh.tmp", age_s=0)
        ResultCache(root, fingerprint="t")
        assert not stale.exists(), "constructor must reap stale tmp"
        assert fresh.exists(), "constructor must spare live writers"

    def test_vacuum_ignores_committed_entries(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", fingerprint="t")
        key = cache.key(point=3)
        cache.put(key, {"v": 3})
        assert cache.vacuum(0.0) == 0
        assert cache.get(key) == {"v": 3}


class TestPutFailureHygiene:
    def test_failed_replace_leaves_no_tmp(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache", fingerprint="t")
        key = cache.key(point=4)

        def boom(src, dst):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            cache.put(key, {"v": 4})
        monkeypatch.undo()
        assert not list((tmp_path / "cache").glob("*/*.tmp"))
        assert cache.get(key) is MISS

    def test_unencodable_value_leaves_no_tmp(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", fingerprint="t")
        with pytest.raises(TypeError):
            cache.put(cache.key(point=5), {"v": object()})
        if (tmp_path / "cache").is_dir():
            assert not list((tmp_path / "cache").glob("*/*.tmp"))

    def test_clear_does_not_rob_live_writers(self, tmp_path):
        """clear() removes entries but never temp files — a concurrent
        put mid-flight must still be able to commit."""
        root = tmp_path / "cache"
        cache = ResultCache(root, fingerprint="t")
        key = cache.key(point=6)
        cache.put(key, {"v": 6})
        live_tmp = root / key[:2] / "inflight.tmp"
        live_tmp.write_text('{"v": "partial"')
        cache.clear()
        assert cache.get(key) is MISS
        assert live_tmp.exists()
