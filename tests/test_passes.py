"""Tests for the middle-end passes: dominators, liveness, CSE, DCE,
divergence analysis, and loop analysis."""

import numpy as np
import pytest

from repro.ocl import (
    GLOBAL_FLOAT32,
    GLOBAL_INT32,
    INT32,
    FLOAT32,
    KernelBuilder,
    NDRange,
    Opcode,
    interpret,
    validate,
)
from repro.passes import cfg, cse, dce, divergence, liveness, loops


def diamond_kernel():
    b = KernelBuilder("diamond")
    out = b.param("out", GLOBAL_INT32)
    v = b.var("v", INT32, init=0)
    with b.if_else(b.lt(b.global_id(0), 4)) as (t, e):
        with t:
            v.set(1)
        with e:
            v.set(2)
    b.store(out, 0, v.get())
    return b.finish()


def loop_kernel():
    b = KernelBuilder("looped")
    out = b.param("out", GLOBAL_INT32)
    acc = b.var("acc", INT32, init=0)
    with b.for_range(0, 10) as i:
        acc.set(b.add(acc.get(), i))
    b.store(out, 0, acc.get())
    return b.finish()


class TestDominators:
    def test_entry_dominates_all(self):
        kernel = diamond_kernel()
        dom = cfg.dominators(kernel)
        entry = kernel.entry
        for block in kernel.blocks:
            assert dom.dominates(entry, block)

    def test_branch_arms_do_not_dominate_merge(self):
        kernel = diamond_kernel()
        dom = cfg.dominators(kernel)
        then_bb = kernel.entry.successors[0]
        else_bb = kernel.entry.successors[1]
        merge = then_bb.successors[0]
        assert not dom.dominates(then_bb, merge)
        assert not dom.dominates(else_bb, merge)
        assert dom.idom[id(merge)] is kernel.entry

    def test_loop_header_dominates_body(self):
        kernel = loop_kernel()
        dom = cfg.dominators(kernel)
        info = loops.analyze(kernel)
        assert len(info.loops) == 1
        loop = info.loops[0]
        for bid in loop.blocks:
            block = info._blocks_by_id[bid]
            assert dom.dominates(loop.header, block)

    def test_preorder_visits_parents_first(self):
        kernel = loop_kernel()
        dom = cfg.dominators(kernel)
        seen = set()
        for block in dom.preorder():
            parent = dom.idom[id(block)]
            assert parent is block or id(parent) in seen
            seen.add(id(block))


class TestPostdominators:
    def test_merge_postdominates_branch(self):
        kernel = diamond_kernel()
        pdom = cfg.postdominators(kernel)
        then_bb = kernel.entry.successors[0]
        merge = then_bb.successors[0]
        assert pdom.immediate(kernel.entry) is merge

    def test_ret_block_has_virtual_ipdom(self):
        kernel = diamond_kernel()
        pdom = cfg.postdominators(kernel)
        ret_block = [b for b in kernel.blocks
                     if b.terminator.op is Opcode.RET][0]
        assert pdom.immediate(ret_block) is None


class TestLoops:
    def test_single_loop_detected_with_trip_count(self):
        kernel = loop_kernel()
        info = loops.analyze(kernel)
        assert len(info.loops) == 1
        assert info.loops[0].trip_count == 10
        assert info.loops[0].depth == 1

    def test_nested_loops_depth(self):
        b = KernelBuilder("nested")
        out = b.param("out", GLOBAL_INT32)
        acc = b.var("acc", INT32, init=0)
        with b.for_range(0, 3):
            with b.for_range(0, 4):
                acc.set(b.add(acc.get(), 1))
        b.store(out, 0, acc.get())
        kernel = b.finish()
        info = loops.analyze(kernel)
        assert len(info.loops) == 2
        inner = min(info.loops, key=lambda l: len(l.blocks))
        outer = max(info.loops, key=lambda l: len(l.blocks))
        assert inner.parent is outer
        assert inner.depth == 2 and outer.depth == 1
        assert inner.trip_count == 4 and outer.trip_count == 3

    def test_dynamic_bound_has_no_trip_count(self):
        b = KernelBuilder("dyn")
        n = b.param("n", INT32)
        out = b.param("out", GLOBAL_INT32)
        acc = b.var("acc", INT32, init=0)
        with b.for_range(0, n):
            acc.set(b.add(acc.get(), 1))
        b.store(out, 0, acc.get())
        kernel = b.finish()
        info = loops.analyze(kernel)
        assert info.loops[0].trip_count is None

    def test_negative_step_trip_count(self):
        b = KernelBuilder("down")
        out = b.param("out", GLOBAL_INT32)
        acc = b.var("acc", INT32, init=0)
        with b.for_range(10, 0, step=-2):
            acc.set(b.add(acc.get(), 1))
        b.store(out, 0, acc.get())
        kernel = b.finish()
        info = loops.analyze(kernel)
        assert info.loops[0].trip_count == 5

    def test_exit_branches_found(self):
        kernel = loop_kernel()
        info = loops.analyze(kernel)
        exits = info.exit_branches(info.loops[0])
        assert len(exits) == 1
        assert exits[0].op is Opcode.CBR


class TestCSE:
    def test_merges_duplicate_arithmetic(self):
        b = KernelBuilder("dup")
        x = b.param("x", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        gid = b.global_id(0)
        v1 = b.mul(b.load(x, gid), 2.0)
        v2 = b.mul(b.load(x, gid), 2.0)  # duplicate load and multiply
        b.store(out, gid, b.add(v1, v2))
        kernel = b.finish()
        before = sum(1 for _ in kernel.instructions())
        merged = cse.run(kernel)
        assert merged >= 2  # the duplicate load and the duplicate fmul
        after = sum(1 for _ in kernel.instructions())
        assert after < before
        validate(kernel)
        # Semantics preserved.
        x_arr = np.array([3.0, 4.0], dtype=np.float32)
        out_arr = np.zeros(2, dtype=np.float32)
        interpret(kernel, [x_arr, out_arr], NDRange.create(2))
        np.testing.assert_allclose(out_arr, [12.0, 16.0])

    def test_load_not_merged_across_store_to_same_root(self):
        b = KernelBuilder("aliased")
        x = b.param("x", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        v1 = b.load(x, 0)
        b.store(x, 0, b.add(v1, 1))
        v2 = b.load(x, 0)  # must NOT merge with v1
        b.store(out, 0, v2)
        kernel = b.finish()
        cse.run(kernel)
        nloads = sum(1 for i in kernel.instructions() if i.op is Opcode.LOAD)
        assert nloads == 2
        x_arr = np.array([5], dtype=np.int32)
        out_arr = np.zeros(1, dtype=np.int32)
        interpret(kernel, [x_arr, out_arr], NDRange.create(1))
        assert out_arr[0] == 6

    def test_load_merged_across_store_to_other_root(self):
        b = KernelBuilder("noalias")
        x = b.param("x", GLOBAL_INT32)
        y = b.param("y", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        v1 = b.load(x, 0)
        b.store(y, 0, v1)
        v2 = b.load(x, 0)  # merges: stores to y don't alias x
        b.store(out, 0, v2)
        kernel = b.finish()
        cse.run(kernel)
        nloads = sum(1 for i in kernel.instructions() if i.op is Opcode.LOAD)
        assert nloads == 1

    def test_barrier_invalidates_local_loads(self):
        b = KernelBuilder("tile")
        tile = b.local_array("tile", INT32, 8)
        out = b.param("out", GLOBAL_INT32)
        lid = b.local_id(0)
        v1 = b.load(tile, 0)
        b.barrier()
        v2 = b.load(tile, 0)  # another item may have written tile[0]
        b.store(out, lid, b.add(v1, v2))
        kernel = b.finish()
        cse.run(kernel)
        nloads = sum(1 for i in kernel.instructions() if i.op is Opcode.LOAD)
        assert nloads == 2

    def test_workitem_queries_merged(self):
        b = KernelBuilder("gidtwice")
        out = b.param("out", GLOBAL_INT32)
        b.store(out, b.global_id(0), b.global_id(0))
        kernel = b.finish()
        cse.run(kernel)
        ngid = sum(1 for i in kernel.instructions() if i.op is Opcode.GID)
        assert ngid == 1

    def test_commutative_operands_merge(self):
        b = KernelBuilder("comm")
        x = b.param("x", INT32)
        y = b.param("y", INT32)
        out = b.param("out", GLOBAL_INT32)
        v1 = b.add(x, y)
        v2 = b.add(y, x)
        b.store(out, 0, b.mul(v1, v2))
        kernel = b.finish()
        cse.run(kernel)
        nadds = sum(1 for i in kernel.instructions() if i.op is Opcode.ADD)
        assert nadds == 1

    def test_dominator_scoping_prevents_bad_merge(self):
        # The same expression in two sibling branches must NOT merge,
        # because neither occurrence dominates the other.
        b = KernelBuilder("siblings")
        x = b.param("x", INT32)
        out = b.param("out", GLOBAL_INT32)
        with b.if_else(b.lt(b.global_id(0), 2)) as (t, e):
            with t:
                b.store(out, 0, b.mul(x, x))
            with e:
                b.store(out, 1, b.mul(x, x))
        kernel = b.finish()
        cse.run(kernel)
        nmuls = sum(1 for i in kernel.instructions() if i.op is Opcode.MUL)
        assert nmuls == 2
        validate(kernel)


class TestDCE:
    def test_removes_unused_chain(self):
        b = KernelBuilder("deadchain")
        x = b.param("x", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        gid = b.global_id(0)
        dead1 = b.mul(b.load(x, gid), 3.0)
        dead2 = b.add(dead1, 1.0)  # noqa: F841 - intentionally unused
        b.store(out, gid, b.load(x, gid))
        kernel = b.finish()
        removed = dce.run(kernel)
        assert removed >= 3  # mul, add, and the now-dead load feeding them
        validate(kernel)

    def test_keeps_side_effects(self):
        b = KernelBuilder("effects")
        out = b.param("out", GLOBAL_INT32)
        b.atomic_add(out, 0, 1)  # result unused but effect must stay
        b.printf("hi")
        kernel = b.finish()
        dce.run(kernel)
        ops = [i.op for i in kernel.instructions()]
        assert Opcode.ATOMIC_ADD in ops
        assert Opcode.PRINTF in ops


class TestDivergence:
    def test_gid_divergent_groupid_uniform(self):
        b = KernelBuilder("k")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        grp = b.group_id(0)
        b.store(out, gid, grp)
        kernel = b.finish()
        info = divergence.analyze(kernel)
        assert info.is_divergent(gid)
        assert not info.is_divergent(grp)

    def test_divergent_branch_flagged(self):
        b = KernelBuilder("k")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        with b.if_(b.lt(gid, 4)):
            b.store(out, gid, 1)
        kernel = b.finish()
        info = divergence.analyze(kernel)
        cbrs = [i for i in kernel.instructions() if i.op is Opcode.CBR]
        assert len(cbrs) == 1
        assert info.branch_is_divergent(cbrs[0])

    def test_uniform_branch_not_flagged(self):
        b = KernelBuilder("k")
        out = b.param("out", GLOBAL_INT32)
        n = b.param("n", INT32)
        with b.if_(b.lt(n, 4)):
            b.store(out, 0, 1)
        kernel = b.finish()
        info = divergence.analyze(kernel)
        cbrs = [i for i in kernel.instructions() if i.op is Opcode.CBR]
        assert not info.branch_is_divergent(cbrs[0])

    def test_load_from_readonly_uniform_index_is_uniform(self):
        b = KernelBuilder("k")
        table = b.param("table", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        v = b.load(table, 0)
        b.store(out, b.global_id(0), v)
        kernel = b.finish()
        info = divergence.analyze(kernel)
        assert not info.is_divergent(v)

    def test_load_from_written_root_is_divergent(self):
        b = KernelBuilder("k")
        buf = b.param("buf", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        b.store(buf, b.global_id(0), 1)
        v = b.load(buf, 0)
        b.store(out, 0, v)
        kernel = b.finish()
        info = divergence.analyze(kernel)
        assert info.is_divergent(v)

    def test_phi_merging_divergent_branch_is_divergent(self):
        b = KernelBuilder("k")
        out = b.param("out", GLOBAL_INT32)
        v = b.var("v", INT32, init=0)
        with b.if_else(b.lt(b.global_id(0), 2)) as (t, e):
            with t:
                v.set(1)
            with e:
                v.set(2)
        b.store(out, 0, v.get())
        kernel = b.finish()
        info = divergence.analyze(kernel)
        phis = [i for i in kernel.instructions() if i.op is Opcode.PHI]
        assert len(phis) == 1
        assert info.is_divergent(phis[0])

    def test_uniform_loop_counter_stays_uniform(self):
        b = KernelBuilder("k")
        n = b.param("n", INT32)
        out = b.param("out", GLOBAL_INT32)
        acc = b.var("acc", INT32, init=0)
        with b.for_range(0, n) as i:
            acc.set(b.add(acc.get(), i))
        b.store(out, b.global_id(0), acc.get())
        kernel = b.finish()
        info = divergence.analyze(kernel)
        phis = [i for i in kernel.instructions() if i.op is Opcode.PHI]
        assert phis and all(not info.is_divergent(p) for p in phis)

    def test_divergent_loop_bound_marks_counter(self):
        b = KernelBuilder("k")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        acc = b.var("acc", INT32, init=0)
        with b.for_range(0, gid) as i:
            acc.set(b.add(acc.get(), i))
        b.store(out, gid, acc.get())
        kernel = b.finish()
        info = divergence.analyze(kernel)
        phis = [i for i in kernel.instructions() if i.op is Opcode.PHI]
        assert all(info.is_divergent(p) for p in phis)


class TestLiveness:
    def test_param_live_into_use_block(self):
        kernel = diamond_kernel()
        lv = liveness.analyze(kernel)
        # out param is used in the final store, so it is live-in at entry
        # (params enter in registers at the entry block).
        out_param = kernel.params[0]
        merge = kernel.entry.successors[0].successors[0]
        assert id(out_param) in lv.live_in[id(merge)]

    def test_loop_carried_value_live_around_backedge(self):
        kernel = loop_kernel()
        lv = liveness.analyze(kernel)
        info = loops.analyze(kernel)
        loop = info.loops[0]
        header_phis = list(loop.header.phis())
        assert header_phis
        latch = loop.latches[0]
        # The accumulator phi is used by the latch increment, so it is
        # live-out of the header and live-in to the body/latch.
        for phi in header_phis:
            assert id(phi) in lv.live_out[id(loop.header)] or any(
                id(phi) in lv.live_in[id(info._blocks_by_id[b])]
                for b in loop.blocks
            )

    def test_dead_value_not_live_out(self):
        b = KernelBuilder("k")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        tmp = b.add(gid, 1)
        b.store(out, gid, tmp)
        kernel = b.finish()
        lv = liveness.analyze(kernel)
        assert not any(id(tmp) in s for s in lv.live_out.values())
