"""Tests for the Vortex synthesis-area model (Table IV) including
hypothesis-backed monotonicity properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SynthesisError
from repro.hls import STRATIX10_MX2100, STRATIX10_SX2800
from repro.vortex import VortexConfig
from repro.vortex.area import estimate, synthesize, to_area_report

geoms = st.tuples(
    st.sampled_from([1, 2, 4, 8]),
    st.sampled_from([2, 4, 8, 16]),
    st.sampled_from([2, 4, 8, 16]),
)


class TestPaperRows:
    @pytest.mark.parametrize("cwt,paper", [
        ((2, 4, 16), (332_143, 459_349, 1_275, 896)),
        ((2, 8, 16), (336_568, 459_353, 1_299, 896)),
        ((2, 16, 16), (341_134, 478_735, 1_299, 896)),
        ((4, 8, 16), (617_748, 793_976, 2_235, 1_792)),
        ((4, 16, 16), (626_688, 827_757, 2_235, 1_792)),
    ])
    def test_within_two_percent(self, cwt, paper):
        c, w, t = cwt
        report = estimate(VortexConfig(cores=c, warps=w, threads=t))
        got = (report.aluts, report.ffs, report.brams, report.dsps)
        for g, p in zip(got, paper):
            assert abs(g - p) / p < 0.02

    def test_dsp_is_28_per_fpu_lane(self):
        r = estimate(VortexConfig(cores=2, warps=4, threads=16))
        assert r.dsps == 896  # 28 * 2 * 16


class TestMonotonicity:
    @given(geoms)
    @settings(max_examples=40, deadline=None)
    def test_more_cores_more_area(self, cwt):
        c, w, t = cwt
        small = estimate(VortexConfig(cores=c, warps=w, threads=t))
        big = estimate(VortexConfig(cores=c * 2, warps=w, threads=t))
        assert big.aluts > small.aluts
        assert big.ffs > small.ffs
        assert big.dsps > small.dsps

    @given(geoms)
    @settings(max_examples=40, deadline=None)
    def test_more_threads_more_area(self, cwt):
        c, w, t = cwt
        small = estimate(VortexConfig(cores=c, warps=w, threads=t))
        big = estimate(VortexConfig(cores=c, warps=w, threads=min(32, t * 2)))
        assert big.aluts > small.aluts

    @given(geoms)
    @settings(max_examples=40, deadline=None)
    def test_all_positive(self, cwt):
        c, w, t = cwt
        r = estimate(VortexConfig(cores=c, warps=w, threads=t))
        assert r.aluts > 0 and r.ffs > 0 and r.brams > 0 and r.dsps >= 0


class TestSynthesize:
    def test_paper_config_fits_both_boards(self):
        cfg = VortexConfig(cores=2, warps=4, threads=16)
        synthesize(cfg, STRATIX10_SX2800)
        synthesize(cfg, STRATIX10_MX2100)

    def test_monster_config_rejected_with_reason(self):
        with pytest.raises(SynthesisError) as exc:
            synthesize(VortexConfig(cores=64, warps=16, threads=16),
                       STRATIX10_SX2800)
        assert exc.value.reason in ("aluts", "ffs", "bram", "dsps")

    def test_largest_feasible_configuration(self):
        """Design-space exploration: find the biggest (C, W=8, T=16)
        fitting each board — the soft-GPU scaling question of §III-D."""
        def max_cores(device):
            cores = 0
            for c in range(1, 33):
                try:
                    synthesize(VortexConfig(cores=c, warps=8, threads=16),
                               device)
                    cores = c
                except SynthesisError:
                    break
            return cores

        big = max_cores(STRATIX10_SX2800)
        small = max_cores(STRATIX10_MX2100)
        assert big >= small  # SX2800 is the larger part
        assert big >= 4  # the paper synthesized 4-core configs


class TestConversion:
    def test_to_area_report(self):
        r = estimate(VortexConfig(cores=2, warps=4, threads=16))
        shared = to_area_report(r)
        assert shared.as_row()["ALUTs"] == r.aluts
        assert "vortex_total" in shared.breakdown
