"""Robustness tests for the Vortex flow: trap paths, awkward launch
geometries, and heavier workload scales."""

import numpy as np
import pytest

from repro.benchmarks import run_benchmark
from repro.errors import TrapError
from repro.ocl import (
    Context,
    GLOBAL_INT32,
    INT32,
    KernelBuilder,
    NDRange,
    interpret,
)
from repro.vortex import VortexBackend, VortexConfig

SMALL = VortexConfig(cores=2, warps=4, threads=4)


class TestTraps:
    def test_out_of_bounds_store_traps(self):
        b = KernelBuilder("oob")
        out = b.param("out", GLOBAL_INT32)
        # Store far past the heap: beyond device memory entirely.
        b.store(out, 0x7000_0000 // 4, 1)
        kernel = b.finish()
        ctx = Context(VortexBackend(SMALL))
        prog = ctx.program([kernel])
        buf = ctx.alloc(4, np.int32)
        with pytest.raises(TrapError, match="out of range"):
            prog.launch("oob", [buf], 4, 4)

    def test_negative_index_traps(self):
        b = KernelBuilder("neg")
        out = b.param("out", GLOBAL_INT32)
        n = b.param("n", INT32)
        b.store(out, b.sub(0, n), 1)
        kernel = b.finish()
        ctx = Context(VortexBackend(SMALL))
        prog = ctx.program([kernel])
        buf = ctx.alloc(4, np.int32)
        with pytest.raises(TrapError):
            prog.launch("neg", [buf, 2**20], 4, 4)


class TestAwkwardGeometry:
    def _roundtrip(self, global_size, local_size, config=SMALL):
        b = KernelBuilder("geo")
        out = b.param("out", GLOBAL_INT32)
        gx = b.global_id(0)
        gy = b.global_id(1)
        gz = b.global_id(2)
        w = b.global_size(0)
        h = b.global_size(1)
        idx = b.add(b.add(b.mul(b.mul(gz, h), w), b.mul(gy, w)), gx)
        packed = b.add(b.add(b.mul(b.local_id(2), 10000),
                             b.mul(b.local_id(1), 100)), b.local_id(0))
        b.store(out, idx, packed)
        kernel = b.finish()
        ndr = NDRange.create(global_size, local_size)
        ref = np.zeros(ndr.total_items, dtype=np.int32)
        interpret(kernel, [ref], ndr)
        ctx = Context(VortexBackend(config))
        prog = ctx.program([kernel])
        buf = ctx.alloc(ndr.total_items, np.int32)
        prog.launch("geo", [buf], global_size, local_size)
        np.testing.assert_array_equal(buf.read(), ref)

    def test_non_power_of_two_local_size(self):
        self._roundtrip(18, 6)

    def test_2d_non_pow2(self):
        self._roundtrip((6, 4), (3, 2))

    def test_3d_geometry(self):
        self._roundtrip((4, 2, 2), (2, 2, 1))

    def test_local_size_one(self):
        self._roundtrip(8, 1)

    def test_group_equals_global(self):
        self._roundtrip(12, 12)


HEAVY = [
    ("matmul", 2),
    ("bfs", 2),
    ("spmv", 2),
    ("pathfinder", 2),
    ("hybridsort", 2),
]


@pytest.mark.parametrize("name,scale", HEAVY)
def test_scaled_benchmarks_on_vortex(name, scale):
    result = run_benchmark(name, VortexBackend(VortexConfig(cores=2,
                                                            warps=8,
                                                            threads=8)),
                           scale=scale, seed=3)
    assert result.ok, f"{name}@x{scale}: {result.status} {result.detail}"


def test_vecadd_on_hbm_config_validates():
    result = run_benchmark("vecadd",
                           VortexBackend(VortexConfig().hbm()), scale=2)
    assert result.ok, result.detail
