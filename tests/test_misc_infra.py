"""Infrastructure tests: the memory map, the Vortex runtime's buffer
management and image cache, and the CLI entry point."""

import numpy as np
import pytest

from repro.errors import RuntimeLaunchError
from repro.ocl import Context, GLOBAL_FLOAT32, INT32, KernelBuilder, NDRange
from repro.vortex import VortexBackend, VortexConfig, layout


class TestLayout:
    def test_regions_do_not_overlap(self):
        regions = [
            (layout.ARG_BASE, layout.NDR_BASE),
            (layout.FMT_BASE, layout.FMT_LIMIT),
            (layout.HEAP_BASE, layout.HEAP_LIMIT),
            (layout.LOCAL_BASE, layout.LOCAL_LIMIT),
            (layout.STACK_BASE, layout.STACK_LIMIT),
        ]
        spans = sorted(regions)
        for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b
        assert spans[-1][1] <= layout.MEM_SIZE

    def test_stack_top_bounds(self):
        assert layout.stack_top(0) == layout.STACK_BASE
        max_threads = (layout.STACK_LIMIT - layout.STACK_BASE) \
            // layout.STACK_SIZE_PER_THREAD
        layout.stack_top(max_threads - 1)  # fits
        with pytest.raises(ValueError):
            layout.stack_top(max_threads)

    def test_local_window_bounds(self):
        base0 = layout.local_window(0, 0, 16)
        base1 = layout.local_window(0, 1, 16)
        assert base1 - base0 == layout.LOCAL_WINDOW_SIZE
        with pytest.raises(ValueError):
            layout.local_window(1000, 15, 16)

    def test_max_supported_machine_fits(self):
        cfg = VortexConfig(cores=4, warps=16, threads=16)
        layout.stack_top(cfg.total_threads - 1)
        layout.local_window(cfg.cores - 1, cfg.warps - 1, cfg.warps)


def _copy_kernel():
    b = KernelBuilder("copy")
    src = b.param("src", GLOBAL_FLOAT32)
    dst = b.param("dst", GLOBAL_FLOAT32)
    n = b.param("n", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        b.store(dst, gid, b.load(src, gid))
    return b.finish()


class TestVortexRuntime:
    def test_image_cache_reuses_compilation(self):
        backend = VortexBackend(VortexConfig(cores=1, warps=2, threads=4))
        kernel = _copy_kernel()
        ndr = NDRange.create(32, 8)
        img1 = backend.compile_for(kernel, ndr)
        img2 = backend.compile_for(kernel, ndr)
        assert img1 is img2
        img3 = backend.compile_for(kernel, NDRange.create(64, 8))
        assert img3 is not img1

    def test_heap_exhaustion(self):
        backend = VortexBackend(VortexConfig(cores=1, warps=2, threads=4))
        ctx = Context(backend)
        prog = ctx.program([_copy_kernel()])
        heap_words = (layout.HEAP_LIMIT - layout.HEAP_BASE) // 4
        big = ctx.buffer(np.zeros(heap_words // 2 + 64, dtype=np.float32))
        other = ctx.buffer(np.zeros(heap_words // 2 + 64, dtype=np.float32))
        with pytest.raises(RuntimeLaunchError, match="heap"):
            prog.launch("copy", [big, other, 4], 4, 4)

    def test_scalar_float_args_pass_by_bits(self):
        from repro.ocl import FLOAT32

        b = KernelBuilder("addc")
        dst = b.param("dst", GLOBAL_FLOAT32)
        c = b.param("c", FLOAT32)
        b.store(dst, b.global_id(0), c)
        kernel = b.finish()
        ctx = Context(VortexBackend(VortexConfig(cores=1, warps=2,
                                                 threads=4)))
        prog = ctx.program([kernel])
        dst_buf = ctx.alloc(4)
        prog.launch("addc", [dst_buf, 1.25], 4, 4)
        np.testing.assert_array_equal(dst_buf.read(),
                                      np.full(4, 1.25, dtype=np.float32))

    def test_negative_scalar_int(self):
        b = KernelBuilder("negc")
        from repro.ocl import GLOBAL_INT32

        dst = b.param("dst", GLOBAL_INT32)
        c = b.param("c", INT32)
        b.store(dst, b.global_id(0), c)
        kernel = b.finish()
        ctx = Context(VortexBackend(VortexConfig(cores=1, warps=2,
                                                 threads=4)))
        prog = ctx.program([kernel])
        dst_buf = ctx.alloc(4, np.int32)
        prog.launch("negc", [dst_buf, -123], 4, 4)
        assert (dst_buf.read() == -123).all()


class TestCLI:
    def test_main_table4(self, capsys):
        from repro.__main__ import main

        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "Table IV" in out and "max relative error" in out

    def test_main_table2(self, capsys):
        from repro.__main__ import main

        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Original code" in out and "auto-CSE" in out

    def test_main_rejects_unknown(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["bogus"])


class TestDisassemblyGolden:
    """A stable disassembly snapshot guards codegen regressions."""

    def test_copy_kernel_disassembly(self):
        from repro.vortex import compile_kernel

        image = compile_kernel(_copy_kernel(), NDRange.create(32, 8),
                               threads=8)
        text = image.disassembly()
        # Structure, not exact bytes: prologue loads 3 args, the guard is
        # a fused split+beq, the body is flw/fsw, the warp halts.
        assert text.count("lw x") == 3
        for fragment in ("csrrs", "split", "beq", "flw", "fsw", "halt"):
            assert fragment in text, fragment
        # 8 threads / 8-item groups: single full wave, no wave loop.
        assert "tmc" not in text


class TestTrace:
    def test_trace_capture(self):
        ctx = Context(VortexBackend(
            VortexConfig(cores=1, warps=2, threads=4), trace=True))
        prog = ctx.program([_copy_kernel()])
        src = ctx.buffer(np.arange(8, dtype=np.float32))
        dst = ctx.alloc(8)
        stats = prog.launch("copy", [src, dst, 8], 8, 4)
        trace = stats.extra["trace"]
        assert len(trace) == stats.dynamic_instructions
        cycles = [t[0] for t in trace]
        assert cycles == sorted(cycles)
        disasms = {t[4].split()[0] for t in trace}
        assert {"flw", "fsw", "halt"} <= disasms
        # tmask column carries the active-lane bits.
        assert all(0 < t[5] < 16 or t[5] == 15 for t in trace)

    def test_trace_off_by_default(self):
        ctx = Context(VortexBackend(VortexConfig(cores=1, warps=2,
                                                 threads=4)))
        prog = ctx.program([_copy_kernel()])
        src = ctx.buffer(np.arange(8, dtype=np.float32))
        dst = ctx.alloc(8)
        stats = prog.launch("copy", [src, dst, 8], 8, 4)
        assert "trace" not in stats.extra
