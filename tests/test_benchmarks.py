"""Tests for the 28-benchmark suite: registry completeness, reference
validation, Vortex execution, and HLS coverage outcomes."""

import numpy as np
import pytest

from repro.benchmarks import all_benchmarks, get_benchmark, run_benchmark
from repro.benchmarks.suite import _MODULES
from repro.hls import HLSBackend, STRATIX10_MX2100, STRATIX10_SX2800
from repro.ocl import ReferenceBackend
from repro.vortex import VortexBackend, VortexConfig

#: Big enough for every benchmark's work-groups (backprop needs 64).
VORTEX_TEST_CONFIG = VortexConfig(cores=2, warps=8, threads=8)

#: The six benchmarks the paper reports failing under the Intel SDK.
HLS_FAILERS = {
    "lbm": "bram",
    "backprop": "bram",
    "btree": "bram",
    "dwt2d": "bram",
    "lud": "bram",
    "hybridsort": "atomics",
}


class TestRegistry:
    def test_all_28_registered(self):
        benches = all_benchmarks()
        assert len(benches) == 28
        assert len({b.table_name for b in benches}) == 28

    def test_table_order_matches_paper(self):
        names = [b.table_name for b in all_benchmarks()]
        assert names[0] == "Vecadd"
        assert names[9] == "Lbm"
        assert names[-1] == "LUD"

    def test_every_benchmark_has_source_attribution(self):
        for bench in all_benchmarks():
            assert bench.source in ("rodinia", "nvidia_sdk", "parboil",
                                    "vortex")

    def test_workloads_are_deterministic(self):
        for bench in all_benchmarks():
            w1 = bench.workload(1, 0)
            w2 = bench.workload(1, 0)
            for key, val in w1.items():
                if isinstance(val, np.ndarray):
                    np.testing.assert_array_equal(val, w2[key])
                else:
                    assert val == w2[key]


@pytest.mark.parametrize("name", _MODULES)
def test_reference_backend_validates(name):
    result = run_benchmark(name, ReferenceBackend())
    assert result.ok, f"{name}: {result.status} {result.detail}"


@pytest.mark.parametrize("name", _MODULES)
def test_vortex_backend_validates(name):
    result = run_benchmark(name, VortexBackend(VORTEX_TEST_CONFIG))
    assert result.ok, f"{name}: {result.status} {result.detail}"
    assert result.total_cycles and result.total_cycles > 0


@pytest.mark.parametrize("name", _MODULES)
def test_hls_backend_matches_table1(name):
    result = run_benchmark(name, HLSBackend(device=STRATIX10_MX2100))
    if name in HLS_FAILERS:
        assert result.status == "compile_failed", f"{name}: {result.status}"
        assert result.fail_reason == HLS_FAILERS[name], result.detail
    else:
        assert result.ok, f"{name}: {result.status} {result.detail}"


class TestFailureMechanics:
    def test_hybridsort_passes_on_ddr4_board(self):
        # The atomics restriction is specific to the HBM2 board.
        result = run_benchmark(
            "hybridsort", HLSBackend(device=STRATIX10_SX2800))
        assert result.ok, result.detail

    def test_backprop_o2_fits_the_board(self):
        from repro.benchmarks import backprop
        from repro.hls import aoc

        report = aoc(backprop.build_o2(), device=STRATIX10_MX2100)
        assert report.brams <= STRATIX10_MX2100.brams

    def test_bram_failers_report_over_capacity(self):
        from repro.hls import aoc

        for name, reason in HLS_FAILERS.items():
            if reason != "bram":
                continue
            report = aoc(get_benchmark(name).build(),
                         enforce_capacity=False)
            assert report.brams > STRATIX10_MX2100.brams, name

    def test_scaled_workloads_still_validate(self):
        for name in ("vecadd", "spmv", "bfs"):
            result = run_benchmark(name, ReferenceBackend(), scale=2,
                                   seed=7)
            assert result.ok, f"{name}: {result.detail}"


@pytest.mark.parametrize("seed", [1, 2, 5])
@pytest.mark.parametrize("name", ["spmv", "bfs", "btree", "hybridsort",
                                  "particlefilter", "psort"])
def test_workload_seed_robustness(name, seed):
    """Data-dependent benchmarks (sparse rows, graphs, trees, buckets)
    must validate for arbitrary seeds, not just the default."""
    result = run_benchmark(name, ReferenceBackend(), seed=seed)
    assert result.ok, f"{name}@seed{seed}: {result.detail}"
