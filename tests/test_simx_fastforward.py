"""Fast-forward correctness: jumping the cycle counter must be purely a
wall-clock optimization.

The machine's main loop skips cycle ranges in two situations — every
core inside a known multi-beat busy window, and every warp waiting on a
future event — and books the skipped cycles from cached per-core
classifications instead of ticking through them. These tests pin the
contract: with ``REPRO_SIMX_NO_FASTFORWARD=1`` the simulator visits
every cycle, and everything observable (cycle counts, per-core counter
sets, ``CacheStats``, DRAM counters, device results) is identical to
the fast-forwarded run. A fast-forwarded machine must also still be
subject to the experiment engine's ``point_timeout`` watchdog — cycle
jumps cannot smuggle a runaway point past the wall-clock limit.
"""

import dataclasses
import os
import time

import numpy as np
import pytest

from repro.errors import PointFailure
from repro.harness.engine import ExperimentEngine
from repro.ocl import Context, GLOBAL_INT32, INT32, KernelBuilder
from repro.vortex import VortexBackend, VortexConfig
from repro.vortex.simx.machine import NO_FASTFORWARD_ENV, Machine

CONFIG = VortexConfig(cores=2, warps=4, threads=8)
N = 64


def _streaming_kernel():
    b = KernelBuilder("stream")
    src = b.param("src", GLOBAL_INT32)
    dst = b.param("dst", GLOBAL_INT32)
    gid = b.global_id(0)
    b.store(dst, gid, b.add(b.load(src, gid), 3))
    return b.finish()


def _barrier_kernel():
    b = KernelBuilder("bar")
    dst = b.param("dst", GLOBAL_INT32)
    lmem = b.local_array("lmem", INT32, 16)
    gid = b.global_id(0)
    lid = b.local_id(0)
    b.store(lmem, lid, gid)
    b.barrier()
    b.store(dst, gid, b.load(lmem, b.rem(b.add(lid, 5), b.const(16))))
    return b.finish()


def _divergent_kernel():
    b = KernelBuilder("div")
    dst = b.param("dst", GLOBAL_INT32)
    gid = b.global_id(0)
    v = b.var("v", INT32)
    v.set(b.const(0))
    with b.if_else(b.lt(b.rem(gid, b.const(3)), b.const(1))) as (t, e):
        with t:
            v.set(b.mul(gid, gid))
        with e:
            v.set(b.sub(b.const(0), gid))
    b.store(dst, gid, v.get())
    return b.finish()


_KERNELS = {
    "streaming": (_streaming_kernel, 16),
    "barrier": (_barrier_kernel, 16),
    "divergent": (_divergent_kernel, 16),
}


def _run(build, local, fast_forward: bool):
    captured = {}
    backend = VortexBackend(
        CONFIG,
        launch_hook=lambda m, r: captured.update(machine=m, result=r))
    old = os.environ.get(NO_FASTFORWARD_ENV)
    os.environ[NO_FASTFORWARD_ENV] = "0" if fast_forward else "1"
    try:
        kernel = build()
        ctx = Context(backend)
        prog = ctx.program([kernel])
        args = [ctx.buffer(np.arange(N, dtype=np.int32))
                for _ in kernel.params]
        prog.launch(kernel.name, args, N, local)
        outs = [a.read().copy() for a in args]
    finally:
        if old is None:
            del os.environ[NO_FASTFORWARD_ENV]
        else:
            os.environ[NO_FASTFORWARD_ENV] = old
    return captured["machine"], captured["result"], outs


@pytest.mark.parametrize("name", sorted(_KERNELS))
def test_ff_on_off_identical(name):
    build, local = _KERNELS[name]
    ff_machine, ff_result, ff_outs = _run(build, local, fast_forward=True)
    sl_machine, sl_result, sl_outs = _run(build, local, fast_forward=False)

    assert ff_result.cycles == sl_result.cycles
    assert ff_result.instructions == sl_result.instructions
    assert ff_result.idle_cycles == sl_result.idle_cycles
    assert ff_result.lsu_stalls == sl_result.lsu_stalls
    assert ff_result.groups_dispatched == sl_result.groups_dispatched
    assert ff_result.dcache_hit_rate == sl_result.dcache_hit_rate
    assert ff_result.dram_row_hit_rate == sl_result.dram_row_hit_rate

    # every per-core counter, not just the aggregates
    for fs, ss in zip(ff_result.core_stats, sl_result.core_stats):
        assert dataclasses.asdict(fs) == dataclasses.asdict(ss)

    # CacheStats and DRAM counters field by field
    for fc, sc in zip(ff_machine.cores, sl_machine.cores):
        assert dataclasses.asdict(fc.dcache.stats) == \
            dataclasses.asdict(sc.dcache.stats)
    assert dataclasses.asdict(ff_machine.dram.stats) == \
        dataclasses.asdict(sl_machine.dram.stats)

    # device-visible results
    for f, s in zip(ff_outs, sl_outs):
        np.testing.assert_array_equal(f, s)

    # the slow path must not have skipped anything
    for key in ("ff_windows", "ff_cycles", "idle_jumps",
                "idle_skipped_cycles"):
        assert sl_result.extra[key] == 0

    # skipped windows are booked in bulk, so each core accounts for
    # every cycle of the machine clock in either mode
    for result in (ff_result, sl_result):
        for s in result.core_stats:
            assert s.cycles_active + s.idle_cycles == result.cycles


def test_streaming_kernel_actually_fast_forwards():
    """Guard against the FF path silently never engaging (in which case
    test_ff_on_off_identical would pass vacuously)."""
    _, result, _ = _run(*_KERNELS["streaming"], fast_forward=True)
    assert result.extra["ff_cycles"] \
        + result.extra["idle_skipped_cycles"] > 0


def test_env_flag_controls_fast_forward(monkeypatch):
    monkeypatch.delenv(NO_FASTFORWARD_ENV, raising=False)
    assert Machine(CONFIG).fast_forward is True
    monkeypatch.setenv(NO_FASTFORWARD_ENV, "1")
    assert Machine(CONFIG).fast_forward is False
    # an explicit constructor argument beats the environment
    assert Machine(CONFIG, fast_forward=True).fast_forward is True


# -- watchdog interaction ----------------------------------------------------


def _short_sim_point(tag):
    kernel = _streaming_kernel()
    ctx = Context(VortexBackend(CONFIG))
    prog = ctx.program([kernel])
    src = ctx.buffer(np.arange(N, dtype=np.int32))
    dst = ctx.alloc(N, np.int32)
    prog.launch("stream", [src, dst], N, 16)
    return tag


def _endless_sim_point(tag):
    # Thousands of back-to-back launches: minutes of wall clock even
    # with fast-forwarding on. Only the watchdog ends this point.
    kernel = _streaming_kernel()
    ctx = Context(VortexBackend(CONFIG))
    prog = ctx.program([kernel])
    for _ in range(200_000):
        src = ctx.buffer(np.arange(N, dtype=np.int32))
        dst = ctx.alloc(N, np.int32)
        prog.launch("stream", [src, dst], N, 16)
    return tag


def test_fast_forwarded_machine_honors_point_timeout():
    assert os.environ.get(NO_FASTFORWARD_ENV, "") in ("", "0")
    started = time.monotonic()
    with ExperimentEngine(jobs=2, point_timeout=2.0,
                          keep_going=True) as engine:
        results = engine.run(_short_sim_point, [(1,)])
        assert results == [1]
        results = engine.run(_endless_sim_point, [(2,)])
    assert isinstance(results[0], PointFailure)
    assert results[0].exc_type == "PointTimeout"
    # the watchdog cancelled the runaway simulation promptly
    assert time.monotonic() - started < 60
