"""Checkpoint/restore and cooperative preemption.

The contract under test: snapshotting a mid-flight SimX machine and
resuming it later is **invisible** — the resumed run's result payload,
device memory, per-core counters and DRAM statistics are byte-identical
to a run that was never interrupted, at *any* snapshot cycle
(hypothesis-drawn), on the vectorized, scalar and no-fast-forward
execution paths alike. Around that core sit the failure-mode tests:
corrupt or version-skewed snapshots are dropped (and counted) in favour
of a clean re-run, the engine requeues a preempted point without
charging a retry only while its snapshot cycle advances, orphaned
snapshot temp files are swept at startup, and the daemon puts a
preempted job back on its queue without journalling it done.
"""

import hashlib
import itertools
import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import (
    CheckpointError,
    PointFailure,
    SimulationPreempted,
)
from repro.harness.engine import ExperimentEngine
from repro.harness.faults import corrupt_checkpoint
from repro.harness.result_cache import ResultCache
from repro.harness.sweep import run_sweep, sweep_point
from repro.vortex import VortexBackend, VortexConfig
from repro.vortex.simx.checkpoint import (
    CheckpointPlan,
    CheckpointStore,
)
from repro.vortex.simx.machine import (
    NO_FASTFORWARD_ENV,
    WARP_DUMP_MAX,
    Machine,
)

CONFIG = VortexConfig(cores=2, warps=2, threads=2)
N = 1024

#: fine snapshot cadence so hypothesis-drawn preempt cycles land on
#: many distinct boundaries instead of collapsing onto CHECK_INTERVAL.
EVERY = 1000

_UNIQUE = itertools.count()


def _spec(tmp_path, point_id, **extra):
    return {"dir": str(tmp_path), "point_id": point_id, "every": EVERY,
            **extra}


def _machine_digest(machine, result):
    """Everything observable about a finished machine, hashable."""
    return {
        "memory": hashlib.sha256(machine.memory.data).hexdigest(),
        "cycles": result.cycles,
        "instructions": result.instructions,
        "cores": [
            (c.stats.instructions, c.stats.cycles_active,
             c.stats.idle_cycles, c.stats.lsu_stalls, c.stats.lsu_replays,
             c.stats.scoreboard_stalls, c.stats.barrier_waits,
             c.stats.simt_instructions,
             c.dcache.stats.accesses, c.dcache.stats.hits,
             c.dcache.stats.misses)
            for c in machine.cores
        ],
        "dram": (machine.dram.stats.requests, machine.dram.stats.row_hits,
                 machine.dram.stats.row_misses),
        "printf": list(machine.printf_output),
    }


def _run_vecadd(config, n, checkpoint=None):
    """One vecadd launch capturing the final machine state digest."""
    import numpy as np

    from repro.benchmarks import get_benchmark
    from repro.ocl import Context

    captured = {}
    backend = VortexBackend(
        config, checkpoint=checkpoint,
        launch_hook=lambda m, r: captured.update(
            digest=_machine_digest(m, r)))
    ctx = Context(backend)
    prog = ctx.program(get_benchmark("vecadd").build())
    rng = np.random.default_rng(0)
    a = ctx.buffer(rng.random(n, dtype=np.float32))
    b = ctx.buffer(rng.random(n, dtype=np.float32))
    c = ctx.alloc(n)
    local = min(16, config.warps * config.threads)
    prog.launch("vecadd", [a, b, c, n], n, local)
    return captured["digest"], c.host.copy()


@pytest.fixture(scope="module")
def baseline():
    """Uninterrupted reference payloads, one simulation each."""
    return {
        "vecadd": sweep_point("vecadd", CONFIG, N),
        "transpose": sweep_point("transpose", CONFIG, N),
    }


# -- round trip --------------------------------------------------------------


class TestRoundTrip:
    def test_preempt_writes_snapshot_and_resume_matches(
            self, tmp_path, baseline):
        spec = _spec(tmp_path, "rt", preempt_at_cycle=5_000)
        with pytest.raises(SimulationPreempted) as exc_info:
            sweep_point("vecadd", CONFIG, N, checkpoint=spec)
        assert exc_info.value.cycle >= 5_000
        store = CheckpointStore(tmp_path)
        assert store.path("rt.L0").exists()
        resumed = sweep_point("vecadd", CONFIG, N, checkpoint=spec)
        assert resumed == baseline["vecadd"]
        # the resume was recorded durably, and the spent snapshot gone.
        assert store.hit_count() == 1
        assert not store.path("rt.L0").exists()

    def test_transpose_roundtrip(self, tmp_path, baseline):
        spec = _spec(tmp_path, "tr", preempt_at_cycle=3_000)
        with pytest.raises(SimulationPreempted):
            sweep_point("transpose", CONFIG, N, checkpoint=spec)
        assert (sweep_point("transpose", CONFIG, N, checkpoint=spec)
                == baseline["transpose"])

    def test_full_machine_state_identical_after_resume(self, tmp_path):
        """Memory, registers' effects, CacheStats, DRAM stats — not just
        the result payload — match an uninterrupted run."""
        ref_digest, ref_out = _run_vecadd(CONFIG, N)
        store = CheckpointStore(tmp_path)
        plan = CheckpointPlan(store, "deep", every_cycles=EVERY,
                              preempt_at_cycle=7_000)
        with pytest.raises(SimulationPreempted):
            _run_vecadd(CONFIG, N, checkpoint=plan)
        plan2 = CheckpointPlan(store, "deep", every_cycles=EVERY)
        digest, out = _run_vecadd(CONFIG, N, checkpoint=plan2)
        assert plan2.hits == 1
        assert digest == ref_digest
        assert (out == ref_out).all()

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(frac=st.integers(0, 9999))
    def test_resume_identical_at_any_cycle(self, tmp_path, baseline,
                                           frac):
        total = baseline["vecadd"]["cycles"]
        # clamp below the last snapshot boundary the run can reach.
        cycle = 1 + frac * max(1, total - 2 * EVERY) // 10_000
        # fresh point id per example: replayed/shrunk examples must not
        # find the previous example's spent one-shot preempt marker.
        spec = _spec(tmp_path, f"hy{next(_UNIQUE)}-{frac}",
                     preempt_at_cycle=cycle)
        with pytest.raises(SimulationPreempted) as exc_info:
            sweep_point("vecadd", CONFIG, N, checkpoint=spec)
        assert exc_info.value.cycle >= cycle
        assert (sweep_point("vecadd", CONFIG, N, checkpoint=spec)
                == baseline["vecadd"])

    @pytest.mark.parametrize("env", ["REPRO_SIMX_SCALAR",
                                     NO_FASTFORWARD_ENV])
    def test_roundtrip_on_alternate_execution_paths(
            self, tmp_path, monkeypatch, env):
        monkeypatch.setenv(env, "1")
        ref = sweep_point("vecadd", CONFIG, N)
        spec = _spec(tmp_path, f"alt-{env}", preempt_at_cycle=4_000)
        with pytest.raises(SimulationPreempted):
            sweep_point("vecadd", CONFIG, N, checkpoint=spec)
        assert sweep_point("vecadd", CONFIG, N, checkpoint=spec) == ref


# -- snapshot store failure modes --------------------------------------------


class TestStore:
    def test_version_skew_dropped_and_counted(self, tmp_path):
        writer = CheckpointStore(tmp_path, fingerprint="old-code")
        writer.save("p", {"now": 7})
        reader = CheckpointStore(tmp_path, fingerprint="new-code")
        assert reader.load("p") is None
        assert reader.stale_dropped == 1
        assert not reader.path("p").exists()

    def test_corrupt_payload_dropped_and_counted(self, tmp_path):
        store = CheckpointStore(tmp_path, fingerprint="f")
        store.save("p", {"now": 7, "blob": list(range(64))})
        corrupt_checkpoint(store, "p")
        assert store.load("p") is None
        assert store.corrupt_dropped == 1
        assert not store.path("p").exists()

    def test_point_id_mismatch_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path, fingerprint="f")
        saved = store.save("right", {"now": 1})
        os.replace(saved, store.path("wrong"))
        assert store.load("wrong") is None

    def test_corrupt_snapshot_degrades_to_clean_run(self, tmp_path,
                                                    baseline):
        spec = _spec(tmp_path, "cor", preempt_at_cycle=5_000)
        with pytest.raises(SimulationPreempted):
            sweep_point("vecadd", CONFIG, N, checkpoint=spec)
        store = CheckpointStore(tmp_path)
        corrupt_checkpoint(store, "cor.L0")
        assert (sweep_point("vecadd", CONFIG, N, checkpoint=spec)
                == baseline["vecadd"])
        assert store.hit_count() == 0  # clean re-run, not a resume

    def test_config_mismatch_degrades_to_clean_run(self, tmp_path):
        """A snapshot from another geometry fails resume verification
        (CheckpointError) and the launch restarts from scratch."""
        spec_a = _spec(tmp_path, "shared", preempt_at_cycle=5_000)
        with pytest.raises(SimulationPreempted):
            sweep_point("vecadd", CONFIG, N, checkpoint=spec_a)
        other = VortexConfig(cores=1, warps=4, threads=4)
        ref = sweep_point("vecadd", other, N)
        spec_b = _spec(tmp_path, "shared")
        assert sweep_point("vecadd", other, N, checkpoint=spec_b) == ref
        store = CheckpointStore(tmp_path)
        assert store.hit_count() == 0
        assert not store.path("shared.L0").exists()

    def test_orphan_tmp_files_swept_on_construction(self, tmp_path):
        old = tmp_path / "dead.tmp"
        old.write_bytes(b"x")
        os.utime(old, (1, 1))
        fresh = tmp_path / "live.tmp"
        fresh.write_bytes(b"y")
        CheckpointStore(tmp_path)  # default age: only stale tmp files go
        assert not old.exists()
        assert fresh.exists()
        assert CheckpointStore(tmp_path, sweep_age_s=0.0) is not None
        assert not fresh.exists()

    def test_resume_verification_runs_before_mutation(self, tmp_path):
        spec = _spec(tmp_path, "ver", preempt_at_cycle=5_000)
        with pytest.raises(SimulationPreempted):
            sweep_point("vecadd", CONFIG, N, checkpoint=spec)
        store = CheckpointStore(tmp_path)
        state = store.load("ver.L0")
        state["ndrange"] = ((999, 1, 1), (1, 1, 1))
        from repro.ocl.ndrange import NDRange
        from repro.vortex.simx.checkpoint import verify_resume

        machine = Machine(CONFIG)
        with pytest.raises(CheckpointError):
            verify_resume(machine, NDRange.create(N, 8), state)


# -- engine scheduling -------------------------------------------------------


class TestEnginePreemption:
    def test_serial_requeue_uncharged(self, tmp_path, baseline):
        spec = _spec(tmp_path, "eng", preempt_at_cycle=5_000)
        engine = ExperimentEngine(jobs=1, keep_going=True, retries=0)
        values = engine.run(sweep_point,
                            [("vecadd", CONFIG, N, False, spec)])
        assert values[0] == baseline["vecadd"]
        assert engine.stats.preempted == 1
        assert engine.stats.failed == 0
        assert engine.stats.retried == 0

    def test_no_progress_preemption_finalises(self):
        def stuck(_):
            raise SimulationPreempted("p", 100)

        engine = ExperimentEngine(jobs=1, keep_going=True, retries=0)
        values = engine.run(stuck, [(0,)])
        failure = values[0]
        assert isinstance(failure, PointFailure)
        assert failure.exc_type == "SimulationPreempted"
        assert engine.stats.preempted == 1  # first yield was free
        assert engine.stats.failed == 1

    def test_forward_progress_requeues_repeatedly(self):
        cycles = iter([100, 200, 300])

        def advancing(_):
            for cycle in cycles:
                raise SimulationPreempted("p", cycle)
            return "done"

        engine = ExperimentEngine(jobs=1, keep_going=True, retries=0)
        assert engine.run(advancing, [(0,)]) == ["done"]
        assert engine.stats.preempted == 3
        assert engine.stats.failed == 0

    def test_stop_preempting_finalises_immediately(self):
        def yielding(_):
            raise SimulationPreempted("p", 100)

        engine = ExperimentEngine(jobs=1, keep_going=True, retries=0)
        engine.stop_preempting()
        values = engine.run(yielding, [(0,)])
        assert isinstance(values[0], PointFailure)
        assert engine.stats.preempted == 0

    def test_preemption_is_not_a_repro_error(self):
        """ReproError handlers in benchmark/harness code must never
        swallow a preemption — it is a control-flow signal."""
        from repro.errors import ReproError

        assert not issubclass(SimulationPreempted, ReproError)

    def test_backoff_jitter_bounds(self, monkeypatch):
        delays = []
        monkeypatch.setattr("repro.harness.engine.time.sleep",
                            delays.append)
        engine = ExperimentEngine(jobs=1, retry_backoff=0.4)
        for _ in range(50):
            engine._sleep_backoff(2)  # base 0.4 * 2**0
        assert all(0.2 <= d < 0.6 for d in delays)
        assert len(set(delays)) > 1  # actually jittered

    def test_cache_keys_unchanged_by_checkpointing(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(warp_sizes=(2,), thread_sizes=(2, 4), n=N,
                      cache=cache)
        first = run_sweep("vecadd", checkpoint_dir=tmp_path / "ck",
                          **kwargs)
        second = run_sweep("vecadd", **kwargs)
        assert second.cycles == first.cycles
        assert second.engine_stats.cache_hits == 2
        assert second.engine_stats.executed == 0


# -- daemon integration ------------------------------------------------------


class TestDaemonPreemption:
    def _daemon(self, tmp_path, **kwargs):
        from repro.service.daemon import ExperimentDaemon

        return ExperimentDaemon(tmp_path / "state",
                                checkpoint_dir=tmp_path / "ck",
                                **kwargs)

    def test_job_checkpoint_spec(self, tmp_path):
        from repro.service.daemon import _Job

        daemon = self._daemon(tmp_path, point_timeout=10.0)
        fig7 = _Job(id="j1", key="k" * 40, seq=1,
                    spec={"kind": "fig7-cell"})
        spec = daemon._job_checkpoint(fig7)
        assert spec["point_id"] == "job-" + "k" * 16
        assert spec["deadline_s"] == pytest.approx(8.0)
        assert spec["stop_file"].endswith("STOP")
        probe = _Job(id="j2", key="p", seq=2, spec={"kind": "probe"})
        assert daemon._job_checkpoint(probe) is None

    def test_preempted_job_requeues_without_journal_record(
            self, tmp_path):
        from repro.service.daemon import QUEUED, RUNNING, _Job

        daemon = self._daemon(tmp_path)
        job = _Job(id="j1", key="k", seq=1, state=RUNNING,
                   spec={"kind": "fig7-cell"}, clients={"c"})
        daemon._jobs[job.id] = job
        daemon._running = 1
        daemon._inflight["c"] = 1
        appended_before = daemon.journal.appended
        daemon._job_finished(job, PointFailure(
            exc_type="SimulationPreempted", message="yield"))
        assert job.state == QUEUED
        assert daemon._queue[0] is job
        assert daemon._running == 0
        assert daemon._inflight == {"c": 1}  # slot kept for the resume
        assert daemon.journal.appended == appended_before

    def test_stop_drops_stop_file_and_start_clears_it(self, tmp_path):
        daemon = self._daemon(tmp_path)
        daemon.start()
        try:
            stop_file = daemon._stop_file_path()
            assert not stop_file.exists()
        finally:
            daemon.request_stop()
            assert daemon.wait(30)
        assert stop_file.exists()
        # a new daemon must not inherit the shutdown signal.
        daemon2 = self._daemon(tmp_path)
        daemon2.start()
        try:
            assert not stop_file.exists()
        finally:
            daemon2.request_stop()
            assert daemon2.wait(30)

    def test_health_reports_checkpoint_hits(self, tmp_path):
        daemon = self._daemon(tmp_path)
        daemon.start()
        try:
            reply = daemon._op_health()
            assert reply["checkpoints"]["hits"] == 0
            assert reply["checkpoints"]["dir"] == str(tmp_path / "ck")
            assert reply["engine"]["preempted"] == 0
        finally:
            daemon.request_stop()
            assert daemon.wait(30)


# -- bounded warp dumps ------------------------------------------------------


class TestWarpDump:
    def test_small_config_renders_every_warp(self):
        machine = Machine(VortexConfig(cores=1, warps=4, threads=2))
        dump = machine.describe_warp_states(0)
        assert len(dump.splitlines()) == 4
        assert "omitted" not in dump

    def test_large_config_is_capped_with_summary(self):
        machine = Machine(VortexConfig(cores=2, warps=32, threads=2))
        dump = machine.describe_warp_states(0)
        lines = dump.splitlines()
        assert len(lines) == WARP_DUMP_MAX + 1
        assert f"... {64 - WARP_DUMP_MAX} more warp(s) omitted" in lines[-1]
        assert f"dump capped at {WARP_DUMP_MAX}" in lines[-1]

    def test_problem_warps_survive_the_cap(self):
        machine = Machine(VortexConfig(cores=2, warps=32, threads=2))
        # mark one late warp as stuck at a barrier: it must outrank the
        # halted warps that precede it in machine order.
        warp = machine.cores[1].warps[31]
        warp.active = True
        warp.at_barrier = True
        dump = machine.describe_warp_states(0, max_warps=8)
        assert "barrier" in dump
        assert "1 problem of 64 total" in dump


# -- snapshot header hygiene -------------------------------------------------


def test_snapshot_header_is_one_json_line(tmp_path):
    store = CheckpointStore(tmp_path, fingerprint="f")
    path = store.save("p", {"now": 3})
    raw = path.read_bytes()
    header = json.loads(raw[:raw.index(b"\n")])
    assert header["magic"] == "repro-simx-snapshot"
    assert header["cycle"] == 3
    assert header["payload_len"] == len(raw) - raw.index(b"\n") - 1


def test_store_save_roundtrips_at_any_compression_level(tmp_path):
    """Hot-path snapshots use zlib level 0 (stored blocks); ``load``
    must accept any level since the header never records one."""
    state = {"now": 7, "blob": list(range(1000))}
    for level in (0, 1, 9):
        store = CheckpointStore(tmp_path / f"l{level}", fingerprint="f")
        store.save("p", state, level=level)
        assert store.load("p") == state


# -- snapshot cost controls --------------------------------------------------


def test_delta_indices_matches_bytewise():
    import numpy as np

    from repro.vortex.simx.checkpoint import _delta_indices

    rng = np.random.default_rng(42)
    for size in (0, 8, 64, 4096, 4096 + 3):  # incl. non-multiple-of-8
        base = rng.integers(0, 256, size, dtype=np.uint8)
        mem = base.copy()
        if size:
            dirty = rng.integers(0, size, size // 7 + 1)
            mem[dirty] ^= rng.integers(1, 256, len(dirty),
                                       dtype=np.uint8)
        expect = np.flatnonzero(mem != base)
        got = _delta_indices(mem, base)
        assert np.array_equal(got, expect)
        assert np.array_equal(_delta_indices(base, base.copy()),
                              np.empty(0, dtype=np.intp))


def test_adaptive_cadence_stretches_only_defaulted_plans(tmp_path):
    from repro.vortex.simx.checkpoint import (
        ADAPT_MAX_EVERY_CYCLES,
        DEFAULT_EVERY_CYCLES,
    )

    store = CheckpointStore(tmp_path, fingerprint="f")
    assert CheckpointPlan(store, "p", every_cycles=EVERY).adaptive is False
    plan = CheckpointPlan(store, "p")
    assert plan.adaptive is True
    assert plan.every_cycles == DEFAULT_EVERY_CYCLES

    # An expensive snapshot right after the previous one (zero elapsed
    # interval makes any positive cost exceed the target fraction).
    control = plan.next_control()
    control._prev_save_end = float("inf")  # force since=0 via max(.,0)
    before = control.every_cycles
    import repro.vortex.simx.checkpoint as ck

    real_capture = ck.capture_state
    ck.capture_state = lambda machine, now: {"now": now}
    try:
        control.save(machine=None, now=123)
    finally:
        ck.capture_state = real_capture
    assert control.every_cycles == 2 * before
    # the stretch is reported back to the plan for later launches...
    assert plan.every_cycles == 2 * before
    assert plan.next_control().every_cycles == 2 * before
    # ...and is capped.
    control.every_cycles = ADAPT_MAX_EVERY_CYCLES
    ck.capture_state = lambda machine, now: {"now": now}
    try:
        control.save(machine=None, now=124)
    finally:
        ck.capture_state = real_capture
    assert control.every_cycles == ADAPT_MAX_EVERY_CYCLES
