"""Structural invariants of the simulators' performance counters.

These don't pin absolute numbers (those shift when the timing model is
tuned); they pin the *accounting identities* every model must keep:
hit/miss splits summing to totals, rates staying in [0, 1] (including
the zero-access corner), per-core busy/idle bookkeeping being
consistent with the machine clock, and derived times scaling linearly
with the clock.
"""

import numpy as np
import pytest

from repro.ocl import (
    Context,
    GLOBAL_INT32,
    INT32,
    KernelBuilder,
    NDRange,
)
from repro.vortex import VortexBackend, VortexConfig
from repro.vortex.simx.cache import Cache, CacheStats
from repro.vortex.simx.dram import DRAMStats
from repro.vortex.simx.machine import LaunchResult, Machine

CONFIG = VortexConfig(cores=2, warps=4, threads=4)


# -- kernels exercising different machine paths ------------------------------

def _streaming_kernel():
    b = KernelBuilder("stream")
    src = b.param("src", GLOBAL_INT32)
    dst = b.param("dst", GLOBAL_INT32)
    gid = b.global_id(0)
    b.store(dst, gid, b.add(b.load(src, gid), 3))
    return b.finish()


def _barrier_kernel():
    b = KernelBuilder("bar")
    dst = b.param("dst", GLOBAL_INT32)
    lmem = b.local_array("lmem", INT32, 8)
    gid = b.global_id(0)
    lid = b.local_id(0)
    b.store(lmem, lid, gid)
    b.barrier()
    b.store(dst, gid, b.load(lmem, b.rem(b.add(lid, 3), b.const(8))))
    return b.finish()


def _launch(kernel, local):
    """Run on SimX capturing the machine-level LaunchResult and Machine."""
    captured = {}

    class _Capture(Machine):
        def launch(self, *args, **kwargs):
            result = super().launch(*args, **kwargs)
            captured["machine"] = self
            captured["result"] = result
            return result

    import repro.vortex.runtime as runtime
    original = runtime.Machine
    runtime.Machine = _Capture
    try:
        ctx = Context(VortexBackend(CONFIG))
        prog = ctx.program([kernel])
        n = 64
        bufs = []
        args = []
        for param in kernel.params:
            buf = ctx.buffer(np.arange(n, dtype=np.int32))
            bufs.append(buf)
            args.append(buf)
        prog.launch(kernel.name, args, n, local)
    finally:
        runtime.Machine = original
    return captured["machine"], captured["result"]


_KERNELS = {
    "streaming": (_streaming_kernel, 16),
    "barrier": (_barrier_kernel, 8),
}


# -- unit-level: cache and DRAM stats ----------------------------------------

def test_cache_accesses_split_into_hits_and_misses():
    cache = Cache(size=1024, ways=2, line_size=64)
    addr = 0x9E3779B9
    for _ in range(500):
        addr = (addr * 1103515245 + 12345) & 0xFFFF
        if not cache.lookup(addr):
            cache.fill(addr)
    stats = cache.stats
    assert stats.accesses == 500
    assert stats.hits + stats.misses == stats.accesses
    assert 0.0 <= stats.hit_rate <= 1.0


def test_zero_access_rates_are_zero_not_nan():
    assert CacheStats().hit_rate == 0.0
    assert DRAMStats().row_hit_rate == 0.0


def test_hit_rate_divides_by_the_accesses_counter():
    # hit_rate is defined against the independent ``accesses`` counter,
    # not the hits+misses sum, so the rate and the split invariant
    # (hits + misses == accesses) can never disagree silently.
    assert CacheStats(accesses=10, hits=4, misses=6).hit_rate == 0.4
    assert CacheStats(accesses=10, hits=5, misses=0).hit_rate == 0.5


# -- machine-level invariants ------------------------------------------------

@pytest.mark.parametrize("name", sorted(_KERNELS))
def test_machine_counter_invariants(name):
    build, local = _KERNELS[name]
    machine, result = _launch(build(), local)

    # cache accounting per core, and the machine-level aggregate rate
    for core in machine.cores:
        s = core.dcache.stats
        assert s.hits + s.misses == s.accesses
        assert 0.0 <= s.hit_rate <= 1.0
    assert 0.0 <= result.dcache_hit_rate <= 1.0

    # DRAM accounting
    d = machine.dram.stats
    assert d.row_hits + d.row_misses == d.requests
    assert 0.0 <= d.row_hit_rate <= 1.0
    assert 0.0 <= result.dram_row_hit_rate <= 1.0

    # the machine clock bounds every core's busy time
    assert result.cycles >= max(s.cycles_active for s in result.core_stats)

    # every scheduler iteration ticks every core exactly once, and each
    # tick books either an active or an idle cycle — so the per-core
    # totals agree across cores and never exceed the machine clock
    ticks = {s.cycles_active + s.idle_cycles for s in result.core_stats}
    assert len(ticks) == 1
    assert ticks.pop() <= result.cycles

    # the aggregate idle count is exactly the per-core sum
    assert result.idle_cycles == sum(s.idle_cycles
                                     for s in result.core_stats)
    assert result.instructions == sum(s.instructions
                                      for s in result.core_stats)


def test_barrier_kernel_waits():
    build, local = _KERNELS["barrier"]
    _, result = _launch(build(), local)
    assert sum(s.barrier_waits for s in result.core_stats) > 0


# -- derived time ------------------------------------------------------------

def test_time_ms_linear_in_clock():
    result = LaunchResult(
        cycles=123_456, instructions=0, printf_output=[], core_stats=[],
        dram_row_hit_rate=0.0, dcache_hit_rate=0.0, lsu_stalls=0,
        idle_cycles=0, groups_dispatched=0,
    )
    assert result.time_ms(200.0) == pytest.approx(2 * result.time_ms(400.0))
    # product clock * time is invariant (pure cycles / clock)
    assert result.time_ms(100.0) * 100.0 == pytest.approx(
        result.time_ms(333.0) * 333.0)
    assert result.time_ms(200.0) == pytest.approx(123_456 / (200.0 * 1e3))


# -- skipped-cycle ranges (fast-forward) -------------------------------------
#
# The machine's main loop does not visit every cycle: known busy windows
# and all-idle waits are booked in bulk and the clock jumps over them.
# The counter identities must be *lossless* under that regime — per-core
# accounting still covers the whole clock, and the profiler's
# cycle-bucket sampler still sums to the final totals even when entire
# buckets were jumped.

import os

from repro.profiling import Profiler
from repro.vortex.simx.machine import NO_FASTFORWARD_ENV


def _launch_ff(kernel, local, fast_forward, profiler=None):
    captured = {}
    backend = VortexBackend(
        CONFIG, profiler=profiler,
        launch_hook=lambda m, r: captured.update(machine=m, result=r))
    old = os.environ.get(NO_FASTFORWARD_ENV)
    os.environ[NO_FASTFORWARD_ENV] = "0" if fast_forward else "1"
    try:
        ctx = Context(backend)
        prog = ctx.program([kernel])
        args = [ctx.buffer(np.arange(64, dtype=np.int32))
                for _ in kernel.params]
        prog.launch(kernel.name, args, 64, local)
    finally:
        if old is None:
            del os.environ[NO_FASTFORWARD_ENV]
        else:
            os.environ[NO_FASTFORWARD_ENV] = old
    return captured["machine"], captured["result"]


@pytest.mark.parametrize("fast_forward", [True, False])
@pytest.mark.parametrize("name", sorted(_KERNELS))
def test_every_cycle_booked_even_when_skipped(name, fast_forward):
    build, local = _KERNELS[name]
    _, result = _launch_ff(build(), local, fast_forward)
    # bulk-booked windows keep the per-core identity exact: every cycle
    # of the machine clock is either active or idle on every core
    for s in result.core_stats:
        assert s.cycles_active + s.idle_cycles == result.cycles
        # stall classifications are a partition of idle time
        assert s.lsu_stalls + s.scoreboard_stalls <= s.idle_cycles
    if not fast_forward:
        for key in ("ff_windows", "ff_cycles", "idle_jumps",
                    "idle_skipped_cycles"):
            assert result.extra[key] == 0


def test_sampler_sums_are_lossless_under_fast_forward():
    build, local = _KERNELS["streaming"]
    prof = Profiler(cycle_bucket=32)
    machine, result = _launch_ff(build(), local, True, profiler=prof)
    skipped = result.extra["ff_cycles"] + result.extra["idle_skipped_cycles"]
    assert skipped > 0, "kernel never fast-forwarded; test is vacuous"

    per_core: dict[int, dict[str, float]] = {}
    skip_total = 0.0
    for ev in prof.events:
        if ev.ph != "C":
            continue
        if ev.name == "skipped cycles":
            skip_total += ev.args["cycles"]
        elif "issue/stall/idle" in ev.name:
            cid = int(ev.name.split()[0][len("core"):])
            acc = per_core.setdefault(
                cid, {"issue": 0.0, "lsu_stall": 0.0,
                      "scoreboard_stall": 0.0, "idle": 0.0})
            for k, v in ev.args.items():
                acc[k] += v

    # the skipped-cycles track surfaces exactly the jumped ranges
    assert skip_total == skipped
    # per-core bucket deltas sum to the final counters: nothing is lost
    # when the clock jumps across bucket boundaries
    for core, s in zip(machine.cores, result.core_stats):
        acc = per_core[core.cid]
        assert acc["issue"] == s.instructions
        assert acc["lsu_stall"] == s.lsu_stalls
        assert acc["scoreboard_stall"] == s.scoreboard_stalls
        assert acc["idle"] == s.idle_cycles - s.lsu_stalls \
            - s.scoreboard_stalls


def test_sampler_buckets_respect_noncontiguous_timestamps():
    """Sample timestamps must be monotonic and land at visited cycles
    even when whole buckets were jumped (edge-triggered sampling)."""
    build, local = _KERNELS["streaming"]
    prof = Profiler(cycle_bucket=16)
    _, result = _launch_ff(build(), local, True, profiler=prof)
    ts = [ev.ts for ev in prof.events if ev.ph == "C"]
    assert ts == sorted(ts)
    assert all(0 <= t <= result.cycles for t in ts)
