"""Tests for the parallel experiment engine and the on-disk result cache.

The contract under test: parallel execution is bit-identical to serial
execution, cached re-runs execute zero simulator points, a changed
code fingerprint invalidates every cached entry, and the failure model
holds — exceptions are captured as :class:`PointFailure` payloads
identical in serial and parallel runs, a killed worker takes down only
its own point, and a hung point is cancelled by the watchdog.
"""

import json
import os
import time

import pytest

from repro.errors import ExperimentAborted, PointFailure
from repro.harness.engine import EngineStats, ExperimentEngine, resolve_jobs
from repro.harness.result_cache import MISS, ResultCache, code_fingerprint
from repro.harness.sweep import run_sweep


def _add(a, b):
    """Module-level (hence spawn-picklable) point function."""
    return a + b


def _fail_on_two(x):
    """Deterministic failing point: only x == 2 is cursed."""
    if x == 2:
        raise ValueError("two is cursed")
    return x * 10


def _try_claim_marker(path):
    """Atomically create ``path``; True exactly once across processes."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _fail_until_marker(path, x):
    """Transient fault: the first call (ever, any process) fails."""
    if _try_claim_marker(path):
        raise RuntimeError("transient fault")
    return x * 10


def _kill_until_marker(path, x):
    """One worker (whichever claims the marker first) dies mid-point."""
    if _try_claim_marker(path):
        os._exit(13)
    return x * 10


def _kill_on_two(x):
    """Persistent killer: every attempt at x == 2 dies, others are fine."""
    if x == 2:
        os._exit(13)
    return x * 10


def _sleep_for(secs, x):
    time.sleep(secs)
    return x


def _sleep_once_then_return(path, secs, x):
    """Hang only on the first call; retries return immediately."""
    if _try_claim_marker(path):
        time.sleep(secs)
    return x * 10


# -- result cache ------------------------------------------------------------

class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key(benchmark="vecadd", n=512)
        assert cache.get(key) is MISS
        cache.put(key, {"cycles": 123})
        assert cache.get(key) == {"cycles": 123}
        assert cache.hits == 1 and cache.misses == 1

    def test_key_is_stable_and_order_insensitive(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        assert cache.key(a=1, b=(2, 3)) == cache.key(b=(2, 3), a=1)
        assert cache.key(a=1) != cache.key(a=2)

    def test_dataclass_parts_hash_by_value(self, tmp_path):
        from repro.vortex import VortexConfig

        cache = ResultCache(tmp_path, fingerprint="f")
        k1 = cache.key(config=VortexConfig(cores=2))
        k2 = cache.key(config=VortexConfig(cores=2))
        k3 = cache.key(config=VortexConfig(cores=4))
        assert k1 == k2 != k3

    def test_fingerprint_changes_every_key(self, tmp_path):
        old = ResultCache(tmp_path, fingerprint="rev-a")
        new = ResultCache(tmp_path, fingerprint="rev-b")
        key = old.key(benchmark="vecadd")
        old.put(key, 1)
        assert new.get(new.key(benchmark="vecadd")) is MISS

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key(x=1)
        cache.put(key, 42)
        cache._path(key).write_text("{not json")
        assert cache.get(key) is MISS

    def test_code_fingerprint_is_deterministic(self):
        fp = code_fingerprint()
        assert fp == code_fingerprint()
        assert len(fp) == 64 and int(fp, 16) >= 0

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache.key(x=1), 1)
        cache.put(cache.key(x=2), 2)
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0


# -- engine ------------------------------------------------------------------

class TestEngine:
    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_serial_preserves_order_and_allows_closures(self):
        engine = ExperimentEngine(jobs=1)
        seen = []

        def fn(x):
            seen.append(x)
            return x * 10

        assert engine.run(fn, [(3,), (1,), (2,)]) == [30, 10, 20]
        assert seen == [3, 1, 2]
        assert engine.stats.executed == 3

    def test_parallel_matches_serial(self):
        points = [(i, i + 1) for i in range(6)]
        serial = ExperimentEngine(jobs=1).run(_add, points)
        parallel = ExperimentEngine(jobs=2).run(_add, points)
        assert serial == parallel == [a + b for a, b in points]

    def test_pool_reused_across_runs_and_closed(self):
        with ExperimentEngine(jobs=2) as engine:
            assert engine.run(_add, [(1, 2), (3, 4)]) == [3, 7]
            pool = engine._pool
            assert pool is not None
            assert engine.run(_add, [(5, 6), (7, 8)]) == [11, 15]
            assert engine._pool is pool
        assert engine._pool is None
        engine.close()  # idempotent

    def test_cache_short_circuits_execution(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        keys = [cache.key(point=p) for p in range(3)]
        points = [(p, p) for p in range(3)]

        first = ExperimentEngine(jobs=1, cache=cache)
        assert first.run(_add, points, keys=keys) == [0, 2, 4]
        assert first.stats.executed == 3 and first.stats.cache_hits == 0

        def exploding(a, b):
            raise AssertionError("must not execute on a warm cache")

        second = ExperimentEngine(jobs=1, cache=cache)
        assert second.run(exploding, points, keys=keys) == [0, 2, 4]
        assert second.stats.executed == 0 and second.stats.cache_hits == 3

    def test_none_key_skips_cache(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        engine = ExperimentEngine(jobs=1, cache=cache)
        engine.run(_add, [(1, 1)], keys=[None])
        assert engine.stats.cache_stores == 0 and len(cache) == 0

    def test_mismatched_keys_rejected(self):
        with pytest.raises(ValueError):
            ExperimentEngine(jobs=1).run(_add, [(1, 1)], keys=[])

    def test_stats_merge_and_summary(self):
        a = EngineStats(jobs=1, points=2, executed=2, wall_s=1.0)
        b = EngineStats(jobs=4, points=3, cache_hits=3, cache_dir="/c")
        a.merge(b)
        assert (a.jobs, a.points, a.executed, a.cache_hits) == (4, 5, 2, 3)
        assert "5 points" in a.summary() and "3 cache hits" in a.summary()


# -- engine failure paths ----------------------------------------------------

def _payloads(results):
    """Normalise a result list for serial-vs-parallel comparison."""
    return [r.to_payload() if isinstance(r, PointFailure) else r
            for r in results]


class TestEngineFailures:
    def test_fail_fast_raises_experiment_aborted(self):
        engine = ExperimentEngine(jobs=1)
        with pytest.raises(ExperimentAborted) as excinfo:
            engine.run(_fail_on_two, [(1,), (2,), (3,)])
        failure = excinfo.value.failure
        assert failure.exc_type == "ValueError"
        assert failure.message == "two is cursed"
        assert "ValueError: two is cursed" in failure.traceback
        assert failure.attempts == 1
        assert "two is cursed" in str(excinfo.value)

    def test_keep_going_captures_failure_in_results(self):
        engine = ExperimentEngine(jobs=1, keep_going=True)
        results = engine.run(_fail_on_two, [(1,), (2,), (3,)])
        assert results[0] == 10 and results[2] == 30
        assert isinstance(results[1], PointFailure)
        assert results[1].brief().startswith("ERROR(ValueError")
        assert engine.stats.failed == 1
        assert "failed=1" in engine.stats.summary()
        assert "retried=0" in engine.stats.summary()

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            ExperimentEngine(retries=-1)
        with pytest.raises(ValueError):
            ExperimentEngine(point_timeout=0)

    def test_abort_keeps_completed_points_in_cache(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="f")
        keys = [cache.key(p=p) for p in (1, 2, 3)]
        first = ExperimentEngine(jobs=1, cache=cache)
        with pytest.raises(ExperimentAborted):
            first.run(_fail_on_two, [(1,), (2,), (3,)], keys=keys)
        # point 1 completed before the abort and was committed
        # incrementally; the failed point 2 was not cached.
        assert first.stats.cache_stores == 1
        resumed = ExperimentEngine(jobs=1, cache=cache, keep_going=True)
        results = resumed.run(_fail_on_two, [(1,), (2,), (3,)], keys=keys)
        assert results[0] == 10 and results[2] == 30
        assert resumed.stats.cache_hits == 1
        assert resumed.stats.executed == 2

    def test_retry_recovers_transient_fault(self, tmp_path):
        marker = str(tmp_path / "marker")
        engine = ExperimentEngine(jobs=1, retries=1, retry_backoff=0.0)
        assert engine.run(_fail_until_marker, [(marker, 7)]) == [70]
        assert engine.stats.failed == 0
        assert engine.stats.retried == 1
        assert "retried=1" in engine.stats.summary()

    def test_exhausted_retries_report_attempt_count(self):
        engine = ExperimentEngine(jobs=1, retries=2, retry_backoff=0.0,
                                  keep_going=True)
        results = engine.run(_fail_on_two, [(2,)])
        assert results[0].attempts == 3
        assert engine.stats.retried == 2 and engine.stats.failed == 1

    def test_serial_and_parallel_failures_identical(self):
        points = [(i,) for i in (1, 2, 3, 4)]
        serial = ExperimentEngine(jobs=1, keep_going=True)
        with ExperimentEngine(jobs=4, keep_going=True) as parallel:
            assert _payloads(serial.run(_fail_on_two, points)) == \
                _payloads(parallel.run(_fail_on_two, points))
        assert serial.stats.failed == parallel.stats.failed == 1

    def test_broken_pool_recovery_spares_innocents(self, tmp_path):
        marker = str(tmp_path / "marker")
        with ExperimentEngine(jobs=2, retries=1,
                              retry_backoff=0.0) as engine:
            points = [(marker, i) for i in range(4)]
            assert engine.run(_kill_until_marker, points) == \
                [0, 10, 20, 30]
            assert engine.stats.failed == 0
            # the pool was respawned and the engine is still usable
            assert engine.run(_add, [(1, 2), (3, 4)]) == [3, 7]

    def test_persistent_killer_charged_alone(self):
        with ExperimentEngine(jobs=2, keep_going=True,
                              retry_backoff=0.0) as engine:
            results = engine.run(_kill_on_two, [(1,), (2,), (3,), (4,)])
        assert results[0] == 10 and results[2] == 30 and results[3] == 40
        assert isinstance(results[1], PointFailure)
        assert results[1].exc_type == "WorkerCrashed"
        assert engine.stats.failed == 1

    def test_timeout_cancels_stuck_point(self):
        started = time.monotonic()
        with ExperimentEngine(jobs=2, point_timeout=2.0,
                              keep_going=True) as engine:
            results = engine.run(_sleep_for,
                                 [(0.0, 1), (20.0, 2), (0.0, 3)])
        assert results[0] == 1 and results[2] == 3
        assert isinstance(results[1], PointFailure)
        assert results[1].exc_type == "PointTimeout"
        assert "2s point-timeout" in results[1].message
        # the watchdog cancelled the 60s sleeper instead of waiting it out
        assert time.monotonic() - started < 30

    def test_timeout_then_retry_succeeds(self, tmp_path):
        marker = str(tmp_path / "marker")
        # pre-claim the fast point's marker so only the slow point can
        # win the claim race — the first attempt at point 1 then
        # deterministically hangs and trips the watchdog.
        fast_marker = str(tmp_path / "marker-fast")
        _try_claim_marker(fast_marker)
        with ExperimentEngine(jobs=2, point_timeout=2.0, retries=1,
                              retry_backoff=0.0) as engine:
            results = engine.run(_sleep_once_then_return,
                                 [(marker, 20.0, 1), (fast_marker, 0.0, 2)])
        assert sorted(results) == [10, 20]
        assert engine.stats.failed == 0
        assert engine.stats.retried >= 1

    def test_serial_timeout_is_post_hoc_with_same_payload(self):
        engine = ExperimentEngine(jobs=1, point_timeout=0.05,
                                  keep_going=True)
        results = engine.run(_sleep_for, [(0.2, 1)])
        assert isinstance(results[0], PointFailure)
        assert results[0].exc_type == "PointTimeout"
        assert results[0].message == "point exceeded 0.05s point-timeout"

    def test_close_cancels_queued_futures(self):
        engine = ExperimentEngine(jobs=2)
        pool = engine._get_pool()
        futures = [pool.submit(time.sleep, 1.0) for _ in range(8)]
        started = time.monotonic()
        engine.close()
        # without cancel_futures the queue would drain through the two
        # workers (~4s of sleeps); cancellation only waits out the two
        # already running.
        assert time.monotonic() - started < 3.0
        assert any(f.cancelled() for f in futures)


class TestPointFailurePayload:
    def test_roundtrip(self):
        failure = PointFailure(exc_type="ValueError", message="boom",
                               traceback="tb", attempts=2)
        assert PointFailure.from_payload(failure.to_payload()) == failure

    def test_brief(self):
        failure = PointFailure(exc_type="KeyError", message="'w'")
        assert failure.brief() == "ERROR(KeyError: 'w')"


# -- sweep through the engine ------------------------------------------------

GRID = dict(cores=2, n=512, warp_sizes=(2, 4), thread_sizes=(2, 4))


class TestSweepEngine:
    def test_parallel_sweep_bit_identical_to_serial(self):
        serial = run_sweep("vecadd", jobs=1, **GRID)
        parallel = run_sweep("vecadd", jobs=4, **GRID)
        assert serial.cycles == parallel.cycles
        assert serial.lsu_stalls == parallel.lsu_stalls
        assert serial.render() == parallel.render()

    def test_second_run_is_all_cache_hits(self, tmp_path):
        cold = run_sweep("vecadd", cache=ResultCache(tmp_path), **GRID)
        assert cold.engine_stats.executed == 4
        warm = run_sweep("vecadd", cache=ResultCache(tmp_path), **GRID)
        assert warm.engine_stats.executed == 0
        assert warm.engine_stats.cache_hits == 4
        assert warm.cycles == cold.cycles

    def test_code_fingerprint_change_invalidates(self, tmp_path):
        run_sweep("vecadd", cache=ResultCache(tmp_path), **GRID)
        changed = run_sweep(
            "vecadd", cache=ResultCache(tmp_path, fingerprint="edited"),
            **GRID)
        assert changed.engine_stats.cache_hits == 0
        assert changed.engine_stats.executed == 4

    def test_profiled_sweep_bypasses_cache_and_matches_serial(
            self, tmp_path):
        cache = ResultCache(tmp_path / "cache", fingerprint="f")
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        run_sweep("vecadd", profile_dir=serial_dir, jobs=1,
                  cache=cache, **GRID)
        assert len(cache) == 0, "profiled points must not be memoised"
        run_sweep("vecadd", profile_dir=parallel_dir, jobs=2,
                  cache=cache, **GRID)
        serial_files = sorted(p.name for p in serial_dir.iterdir())
        assert serial_files == sorted(
            p.name for p in parallel_dir.iterdir())
        assert len(serial_files) == 8  # 4 cells x (trace + summary)
        for name in serial_files:
            assert ((serial_dir / name).read_bytes()
                    == (parallel_dir / name).read_bytes()), name


# -- cached profile harness --------------------------------------------------

class TestProfileCache:
    def test_cached_profile_replays_identically(self, tmp_path):
        from repro.harness import run_profile_cached

        rep1, sum1, hit1 = run_profile_cached(
            "vecadd", backend="simx", cache=ResultCache(tmp_path))
        rep2, sum2, hit2 = run_profile_cached(
            "vecadd", backend="simx", cache=ResultCache(tmp_path))
        assert (hit1, hit2) == (False, True)
        assert sum1 == sum2
        assert rep1.render() == rep2.render()
        assert json.dumps(rep1.chrome_trace()) == json.dumps(
            rep2.chrome_trace())


# -- CLI ---------------------------------------------------------------------

class TestCLI:
    def test_fig7_jobs_and_cache_flags(self, capsys, tmp_path):
        from repro.__main__ import main

        argv = ["fig7", "--warp-sizes", "2,4", "--thread-sizes", "2",
                "--cache-dir", str(tmp_path)]
        assert main(argv + ["--jobs", "2"]) == 0
        cold = capsys.readouterr().out
        assert "4 points, 4 executed, 0 cache hits" in cold
        # quoted paper cells are outside this grid: render "-", not crash
        assert "- / 1.27" in cold

        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "4 points, 0 executed, 4 cache hits" in warm
        # identical artifact body (everything above the engine summary)
        strip = (lambda out: out[:out.rindex("engine:")])
        assert strip(cold) == strip(warm)

    def test_fig7_no_cache_flag(self, capsys, tmp_path):
        from repro.__main__ import main

        argv = ["fig7", "--warp-sizes", "2", "--thread-sizes", "2",
                "--cache-dir", str(tmp_path), "--no-cache"]
        assert main(argv) == 0
        assert "2 points, 2 executed, 0 cache hits" in capsys.readouterr().out
        assert len(ResultCache(tmp_path)) == 0

    def test_fig7_bad_size_list_rejected(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["fig7", "--warp-sizes", "two"])

    def test_profile_cache_hit_is_reported(self, capsys, tmp_path):
        from repro.__main__ import main

        argv = ["profile", "vecadd", "--backend", "simx",
                "--cache-dir", str(tmp_path / "cache"),
                "--trace-out", str(tmp_path / "p.trace.json")]
        assert main(argv) == 0
        assert "cache hit" not in capsys.readouterr().out
        assert main(argv) == 0
        assert "result cache hit: no simulation ran" in (
            capsys.readouterr().out)
