"""Structural tests for the Vortex code generator: divergence lowering,
wave loops, register allocation, frame layout, and image metadata."""

import numpy as np
import pytest

from repro.errors import CompilationError
from repro.ocl import (
    FLOAT32,
    GLOBAL_FLOAT32,
    GLOBAL_INT32,
    INT32,
    KernelBuilder,
    NDRange,
)
from repro.vortex import compile_kernel
from repro.vortex.isa import (
    AT,
    AT2,
    AT3,
    LOOP_MASK_REGS,
    SP,
    WAVE_REG,
    X_ALLOC_FIRST,
    X_ALLOC_LAST,
    ZERO,
)
from repro.vortex.regalloc import allocate, build_interference, reg_class


def _mnemonics(image):
    return [i.mnemonic for i in image.program.instructions]


def guarded_kernel():
    b = KernelBuilder("guarded")
    out = b.param("out", GLOBAL_INT32)
    n = b.param("n", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        b.store(out, gid, gid)
    return b.finish()


class TestDivergenceLowering:
    def test_divergent_if_emits_split_join(self):
        image = compile_kernel(guarded_kernel(), NDRange.create(16, 4),
                               threads=4)
        ops = _mnemonics(image)
        assert ops.count("split") == 1
        assert ops.count("join") == 1
        # Fused form: the instruction after SPLIT is a beq on x0.
        idx = ops.index("split")
        branch = image.program.instructions[idx + 1]
        assert branch.mnemonic == "beq" and branch.rs2 == ZERO

    def test_uniform_branch_has_no_split(self):
        b = KernelBuilder("uni")
        out = b.param("out", GLOBAL_INT32)
        n = b.param("n", INT32)
        with b.if_(b.lt(n, 10)):
            b.store(out, 0, 1)
        image = compile_kernel(b.finish(), NDRange.create(16, 4), threads=4)
        assert "split" not in _mnemonics(image)
        assert "join" not in _mnemonics(image)

    def test_divergent_loop_emits_pred_and_mask_save(self):
        b = KernelBuilder("divloop")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        acc = b.var("acc", INT32, init=0)
        with b.for_range(0, gid):
            acc.set(b.add(acc.get(), 1))
        b.store(out, gid, acc.get())
        image = compile_kernel(b.finish(), NDRange.create(16, 4), threads=4)
        ops = _mnemonics(image)
        assert "pred" in ops
        pred = image.program.instructions[ops.index("pred")]
        assert pred.rs2 in LOOP_MASK_REGS
        # The mask register is saved from the TMASK CSR before the loop.
        csrs = [i for i in image.program.instructions
                if i.mnemonic == "csrrs" and i.rd in LOOP_MASK_REGS]
        assert len(csrs) == 1
        # PRED's skip-slot is the loop-exit jump.
        nxt = image.program.instructions[ops.index("pred") + 1]
        assert nxt.mnemonic == "jal"

    def test_uniform_loop_has_no_pred(self):
        b = KernelBuilder("uniloop")
        out = b.param("out", GLOBAL_INT32)
        acc = b.var("acc", INT32, init=0)
        with b.for_range(0, 10):
            acc.set(b.add(acc.get(), 1))
        b.store(out, b.global_id(0), acc.get())
        image = compile_kernel(b.finish(), NDRange.create(16, 4), threads=4)
        assert "pred" not in _mnemonics(image)

    def test_nested_divergent_loops_use_distinct_mask_regs(self):
        b = KernelBuilder("nest")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        acc = b.var("acc", INT32, init=0)
        with b.for_range(0, gid):
            with b.for_range(0, b.rem(gid, 3)):
                acc.set(b.add(acc.get(), 1))
        b.store(out, gid, acc.get())
        image = compile_kernel(b.finish(), NDRange.create(16, 4), threads=4)
        preds = [i for i in image.program.instructions
                 if i.mnemonic == "pred"]
        assert len(preds) == 2
        assert preds[0].rs2 != preds[1].rs2


class TestWaveLoop:
    def test_wave_mode_for_barrier_free_kernels(self):
        image = compile_kernel(guarded_kernel(), NDRange.create(64, 16),
                               threads=4)
        assert image.wave_mode
        ops = _mnemonics(image)
        # 16-item groups on 4 threads: the wave loop increments x27 by 4.
        incs = [i for i in image.program.instructions
                if i.mnemonic == "addi" and i.rd == WAVE_REG
                and i.rs1 == WAVE_REG]
        assert len(incs) == 1 and incs[0].imm == 4

    def test_barrier_kernel_uses_warp_sets(self):
        b = KernelBuilder("bar")
        out = b.param("out", GLOBAL_INT32)
        tile = b.local_array("tile", INT32, 16)
        lid = b.local_id(0)
        b.store(tile, lid, lid)
        b.barrier()
        b.store(out, b.global_id(0), b.load(tile, b.sub(15, lid)))
        image = compile_kernel(b.finish(), NDRange.create(32, 16), threads=4)
        assert not image.wave_mode
        assert "bar" in _mnemonics(image)

    def test_single_full_wave_has_no_loop(self):
        image = compile_kernel(guarded_kernel(), NDRange.create(64, 4),
                               threads=4)
        assert image.wave_mode
        incs = [i for i in image.program.instructions
                if i.mnemonic == "addi" and i.rd == WAVE_REG
                and i.rs1 == WAVE_REG]
        assert not incs  # group size == T: one wave, no loop

    def test_partial_wave_emits_tmc(self):
        image = compile_kernel(guarded_kernel(), NDRange.create(36, 6),
                               threads=4)
        assert "tmc" in _mnemonics(image)

    def test_no_threads_disables_wave_mode(self):
        image = compile_kernel(guarded_kernel(), NDRange.create(16, 4))
        assert not image.wave_mode


class TestRegisterAllocation:
    def test_reserved_registers_never_allocated(self):
        b = KernelBuilder("many")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        vals = [b.mul(gid, i + 1) for i in range(20)]
        acc = b.var("acc", INT32, init=0)
        for v in vals:
            acc.set(b.add(acc.get(), v))
        b.store(out, gid, acc.get())
        kernel = b.finish()
        alloc = allocate(kernel)
        reserved = {ZERO, AT, SP, AT2, AT3, WAVE_REG} | set(LOOP_MASK_REGS)
        for vid, reg in alloc.regs.items():
            if alloc.classes[vid] == "x":
                assert reg not in reserved
                assert X_ALLOC_FIRST <= reg <= X_ALLOC_LAST

    def test_interfering_values_get_distinct_registers(self):
        b = KernelBuilder("interf")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        xs = [b.add(gid, i) for i in range(6)]
        total = xs[0]
        for x in xs[1:]:
            total = b.add(total, x)
        b.store(out, gid, total)
        kernel = b.finish()
        alloc = allocate(kernel)
        adj = build_interference(kernel)
        values = {id(p): p for p in kernel.params}
        for ins in kernel.instructions():
            if ins.ty is not None:
                values[id(ins)] = ins
        for vid, neighbours in adj.items():
            if vid in alloc.spill_slots:
                continue
            for nid in neighbours:
                if nid in alloc.spill_slots:
                    continue
                if alloc.classes[vid] == alloc.classes[nid]:
                    assert alloc.regs[vid] != alloc.regs[nid]

    def test_spill_slots_are_distinct(self):
        b = KernelBuilder("spill")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        vals = [b.mul(gid, i + 1) for i in range(40)]
        acc = b.var("acc", INT32, init=0)
        for v in vals:
            acc.set(b.add(acc.get(), v))
        b.store(out, gid, acc.get())
        alloc = allocate(b.finish())
        slots = list(alloc.spill_slots.values())
        assert len(slots) == len(set(slots))
        assert alloc.spill_bytes == 4 * len(slots)
        assert slots  # this kernel must actually spill

    def test_float_and_int_files_independent(self):
        b = KernelBuilder("mixed")
        out = b.param("out", GLOBAL_FLOAT32)
        gid = b.global_id(0)
        f = b.itof(gid)
        g = b.mul(f, 2.0)
        b.store(out, gid, g)
        kernel = b.finish()
        alloc = allocate(kernel)
        classes = set(alloc.classes.values())
        assert classes == {"x", "f"}


class TestFrameAndImage:
    def test_private_array_frame_offsets(self):
        b = KernelBuilder("priv")
        out = b.param("out", GLOBAL_INT32)
        s1 = b.private_array("s1", INT32, 4)
        s2 = b.private_array("s2", FLOAT32, 6)
        b.store(s1, 0, 1)
        b.store(s2, 0, 1.0)
        b.store(out, b.global_id(0), b.load(s1, 0))
        image = compile_kernel(b.finish(), NDRange.create(16, 4), threads=4)
        offsets = sorted(image.frame.private_offsets.values())
        assert offsets[0] == 0
        assert offsets[1] >= 16  # 4 ints, aligned
        assert image.frame.size >= 16 + 24

    def test_local_arrays_get_window_offsets(self):
        b = KernelBuilder("loc")
        out = b.param("out", GLOBAL_INT32)
        t1 = b.local_array("t1", INT32, 8)
        t2 = b.local_array("t2", INT32, 8)
        lid = b.local_id(0)
        b.store(t1, lid, lid)
        b.barrier()
        b.store(out, b.global_id(0), b.load(t2, lid))
        image = compile_kernel(b.finish(), NDRange.create(16, 4), threads=4)
        assert image.local_window_bytes == 64
        assert sorted(image.local_offsets.values()) == [0, 32]

    def test_oversized_frame_rejected(self):
        b = KernelBuilder("hugepriv")
        out = b.param("out", GLOBAL_INT32)
        big = b.private_array("big", INT32, 2000)
        b.store(big, 0, 1)
        b.store(out, 0, b.load(big, 0))
        with pytest.raises(CompilationError, match="stack"):
            compile_kernel(b.finish(), NDRange.create(4, 4), threads=4)

    def test_printf_format_table(self):
        b = KernelBuilder("pf")
        b.printf("a %d", b.global_id(0))
        b.printf("b %f", b.const(1.0))
        b.printf("a %d", b.global_id(0))  # duplicate fmt -> one entry
        image = compile_kernel(b.finish(), NDRange.create(4, 4), threads=4)
        assert len(image.fmt_table) == 2

    def test_image_reports_static_size(self):
        image = compile_kernel(guarded_kernel(), NDRange.create(16, 4),
                               threads=4)
        assert image.num_instructions == len(image.program.instructions)
        assert image.program.size_bytes == 4 * image.num_instructions


class TestGeometrySpecialization:
    def test_local_size_becomes_constant(self):
        b = KernelBuilder("ls")
        out = b.param("out", GLOBAL_INT32)
        b.store(out, b.global_id(0), b.local_size(0))
        image = compile_kernel(b.finish(), NDRange.create(32, 8), threads=4)
        # No NDR memory read: the size is a compile-time li.
        loads = [i for i in image.program.instructions
                 if i.mnemonic == "lw"]
        # Only the argument-block load for `out` remains.
        assert len(loads) == 1

    def test_different_geometry_different_code(self):
        k = guarded_kernel()
        img_a = compile_kernel(k, NDRange.create(32, 8), threads=4)
        img_b = compile_kernel(k, NDRange.create(32, 16), threads=4)
        assert list(img_a.program.words) != list(img_b.program.words)
