"""Tests for the analytical Vortex performance model (the paper's §IV-A
"challenge 1" research direction, implemented).

Validation criteria are regret-based: the model exists to *recommend a
configuration without running 16 cycle simulations*, so what matters is
how much slower its top pick is than the true optimum — not exact cycle
prediction.
"""

import numpy as np
import pytest

from repro.benchmarks.suite import get_benchmark
from repro.ocl import NDRange
from repro.vortex import VortexConfig
from repro.vortex.analytical import (
    KernelProfile,
    Prediction,
    explore,
    predict,
    recommend,
)


@pytest.fixture(scope="module")
def vecadd_profile():
    bench = get_benchmark("vecadd")
    rng = np.random.default_rng(0)
    n = 4096
    kernel = bench.build()[0]
    args = [rng.random(n, dtype=np.float32),
            rng.random(n, dtype=np.float32),
            np.zeros(n, dtype=np.float32), n]
    return KernelProfile.collect(kernel, args, NDRange.create(n, 16))


class TestProfile:
    def test_vecadd_profile_shape(self, vecadd_profile):
        p = vecadd_profile
        assert p.total_items == 4096
        assert p.loads_per_item == pytest.approx(2.0)
        assert p.stores_per_item == pytest.approx(1.0)
        assert p.coalesced_fraction == 1.0
        assert p.ops_per_item > 3

    def test_indirect_kernel_has_low_coalescing(self):
        from repro.ocl import GLOBAL_FLOAT32, GLOBAL_INT32, KernelBuilder

        b = KernelBuilder("gather")
        idx = b.param("idx", GLOBAL_INT32)
        data = b.param("data", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        gid = b.global_id(0)
        b.store(out, gid, b.load(data, b.load(idx, gid)))
        kernel = b.finish()
        n = 64
        rng = np.random.default_rng(1)
        args = [rng.permutation(n).astype(np.int32),
                rng.random(n, dtype=np.float32),
                np.zeros(n, dtype=np.float32)]
        prof = KernelProfile.collect(kernel, args, NDRange.create(n, 16))
        assert prof.coalesced_fraction == pytest.approx(0.5)


class TestPredictions:
    def test_bounds_positive_and_bottleneck_named(self, vecadd_profile):
        pred = predict(vecadd_profile, VortexConfig(cores=4, warps=4,
                                                    threads=4))
        assert pred.cycles > 0
        assert pred.bottleneck in ("issue", "memory", "latency")

    def test_tiny_config_is_latency_or_issue_bound(self, vecadd_profile):
        pred = predict(vecadd_profile, VortexConfig(cores=4, warps=2,
                                                    threads=2))
        assert pred.bottleneck in ("latency", "issue")
        big = predict(vecadd_profile, VortexConfig(cores=4, warps=8,
                                                   threads=8))
        assert pred.cycles > big.issue_bound

    def test_explore_covers_grid(self, vecadd_profile):
        preds = explore(vecadd_profile)
        assert len(preds) == 16
        assert all(isinstance(p, Prediction) for p in preds.values())


class TestAgainstSimulator:
    """One interpreter profile vs sixteen cycle simulations."""

    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.harness import run_sweep

        return run_sweep("vecadd")

    def test_recommends_true_optimum_for_vecadd(self, vecadd_profile,
                                                sweep):
        preds = explore(vecadd_profile)
        assert recommend(preds, top=1)[0] == sweep.best == (4, 4)

    def test_rank_correlation(self, vecadd_profile, sweep):
        preds = explore(vecadd_profile)
        keys = sorted(preds)
        predicted = [preds[k].cycles for k in keys]
        actual = [sweep.cycles[k] for k in keys]
        # Spearman rank correlation without scipy dependence on stats api:
        import scipy.stats

        rho = scipy.stats.spearmanr(predicted, actual).statistic
        assert rho > 0.6

    def test_regret_of_top_pick(self, vecadd_profile, sweep):
        preds = explore(vecadd_profile)
        pick = recommend(preds, top=1)[0]
        regret = sweep.cycles[pick] / sweep.cycles[sweep.best] - 1.0
        assert regret <= 0.15
