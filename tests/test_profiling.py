"""Unit tests for the unified profiler and its reports, plus the
zero-overhead contract of the disabled (null) profiler.

The null-profiler contract has two halves:

* **no recording work** — when ``enabled`` is False, no recording
  method is ever invoked on the hot paths (asserted with a profiler
  that raises on any recording call);
* **no wall-clock cost** — a fig7-scale sweep with the shipped default
  (disabled) profiler must not be slower than the same sweep with
  profiling enabled (the enabled run does strictly more work), within
  a 5% noise margin. The benchmark is ``slow``-marked.
"""

import json
import time

import numpy as np
import pytest

from repro.ocl import Context, GLOBAL_INT32, INT32, KernelBuilder
from repro.profiling import (
    NULL_PROFILER,
    NullProfiler,
    ProfileReport,
    Profiler,
    TraceEvent,
    ensure_profiler,
)
from repro.vortex import VortexBackend, VortexConfig


# -- profiler basics ---------------------------------------------------------

def test_counters_accumulate():
    p = Profiler()
    p.count("a.x")
    p.count("a.x", 2)
    p.count_many({"y": 5, "z": 1.5}, prefix="a.")
    assert p.counters["a.x"] == 3
    assert p.counters["a.y"] == 5
    assert p.counters["a.z"] == 1.5


def test_events_and_phases():
    p = Profiler()
    p.complete("work", "cat", ts=10, dur=5, pid=1, tid=2, args={"k": 1})
    p.instant("mark", "cat", ts=12)
    p.sample("load", ts=0, values={"issue": 3, "stall": 1})
    phases = [e.ph for e in p.events]
    assert phases == ["X", "i", "C"]
    chrome = [e.as_chrome() for e in p.events]
    assert chrome[0]["dur"] == 5.0 and chrome[0]["args"] == {"k": 1}
    assert chrome[1]["s"] == "t"
    assert chrome[2]["args"] == {"issue": 3.0, "stall": 1.0}
    assert "dur" not in chrome[1] and "dur" not in chrome[2]


def test_span_records_wall_clock():
    p = Profiler()
    with p.span("phase", cat="host", args={"n": 1}):
        pass
    (event,) = p.events
    assert event.ph == "X" and event.name == "phase"
    assert event.dur >= 0.0
    assert event.ts >= 0.0


def test_cycle_bucket_validation():
    with pytest.raises(ValueError):
        Profiler(cycle_bucket=0)
    assert Profiler(cycle_bucket=1).cycle_bucket == 1


def test_ensure_profiler():
    assert ensure_profiler(None) is NULL_PROFILER
    p = Profiler()
    assert ensure_profiler(p) is p


def test_null_profiler_is_inert():
    p = NullProfiler()
    assert not p.enabled
    p.count("x")
    p.count_many({"y": 1})
    p.complete("a", "b", 0, 1)
    p.instant("a", "b", 0)
    p.sample("a", 0, {"v": 1})
    p.name_process(0, "x")
    p.name_thread(0, 0, "x")
    p.set_meta("k", "v")
    assert not p.counters and not p.events and not p.meta
    assert not NULL_PROFILER.enabled


# -- report ------------------------------------------------------------------

def _sample_report():
    p = Profiler()
    p.set_meta("backend", "simx")
    p.set_meta("kernel", "k")
    p.count("simx.cycles", 100)
    p.count("hls.cycles", 50)
    p.complete("g", "sim", 0, 10)
    p.name_process(1, "core 0")
    p.name_thread(1, 0, "slot 0")
    return p.report(title="t", backend="simx")


def test_report_render():
    text = _sample_report().render()
    assert "== profile: t" in text
    assert "simx.cycles" in text and "100" in text
    assert "kernel: k" in text
    # the backend meta key must not be duplicated below the header
    assert text.count("backend: simx") == 1


def test_report_chrome_trace_structure(tmp_path):
    report = _sample_report()
    doc = report.chrome_trace()
    names = [e["name"] for e in doc["traceEvents"]]
    assert "process_name" in names and "thread_name" in names
    assert "g" in names
    assert doc["otherData"]["backend"] == "simx"
    path = report.save_chrome_trace(tmp_path / "t.trace.json")
    reloaded = json.loads(path.read_text())
    assert reloaded["traceEvents"]


def test_report_json_summary(tmp_path):
    report = _sample_report()
    doc = report.to_json()
    assert doc["counters"]["simx.cycles"] == 100
    assert doc["events"]["spans"] == 1
    path = report.save_json(tmp_path / "t.json")
    assert json.loads(path.read_text())["title"] == "t"


def test_report_detached_from_profiler():
    p = Profiler()
    p.count("x", 1)
    report = p.report()
    p.count("x", 41)
    assert report.counters["x"] == 1


# -- disabled-profiler contract ----------------------------------------------

class _Tripwire(NullProfiler):
    """Disabled profiler that fails the test on any recording call."""

    def _trip(self, *a, **k):
        raise AssertionError(
            "recording method called although profiling is disabled")

    count = count_many = complete = instant = sample = _trip
    name_process = name_thread = set_meta = _trip


def _barrier_kernel():
    b = KernelBuilder("bar")
    dst = b.param("dst", GLOBAL_INT32)
    lmem = b.local_array("lmem", INT32, 8)
    gid = b.global_id(0)
    lid = b.local_id(0)
    b.store(lmem, lid, gid)
    b.barrier()
    b.store(dst, gid, b.load(lmem, b.rem(b.add(lid, 1), b.const(8))))
    return b.finish()


def test_disabled_profiler_records_nothing():
    """Hot paths must skip all recording work when profiling is off."""
    ctx = Context(VortexBackend(VortexConfig(cores=2, warps=2, threads=4),
                                profiler=_Tripwire()))
    prog = ctx.program([_barrier_kernel()])
    buf = ctx.alloc(64, np.int32)
    prog.launch("bar", [buf], 64, 8)  # raises if anything records


@pytest.mark.slow
def test_disabled_profiler_overhead():
    """A fig7-scale sweep with the shipped (disabled) profiler must not
    be slower than the profiled sweep: the enabled run does strictly
    more work, so within a 5% noise margin
    ``disabled <= enabled * 1.05`` must hold."""
    from repro.harness import run_sweep

    def best_of(runs, profile_dir):
        best = float("inf")
        for _ in range(runs):
            t0 = time.perf_counter()
            run_sweep("vecadd", n=4096, warp_sizes=(4, 8),
                      thread_sizes=(4, 8), profile_dir=profile_dir)
            best = min(best, time.perf_counter() - t0)
        return best

    import tempfile

    best_of(1, None)  # warm caches/JIT-ish costs out of the measurement
    disabled = best_of(3, None)
    with tempfile.TemporaryDirectory() as d:
        enabled = best_of(3, d)
    assert disabled <= enabled * 1.05, (
        f"disabled sweep {disabled:.3f}s slower than "
        f"profiled sweep {enabled:.3f}s + 5%"
    )
