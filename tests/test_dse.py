"""Tests for the design-space-exploration harness."""

import numpy as np
import pytest

from repro.harness.dse import DSEResult, explore_design_space
from repro.hls import STRATIX10_MX2100, STRATIX10_SX2800
from repro.ocl import NDRange
from repro.vortex import KernelProfile, VortexConfig
from repro.benchmarks import get_benchmark


def _fake_simulate(config):
    """Deterministic, spawn-picklable stand-in for a SimX run."""
    return config.cores * 1000 + config.warps * 10 + config.threads


@pytest.fixture(scope="module")
def profile():
    bench = get_benchmark("vecadd")
    kernel = bench.build()[0]
    rng = np.random.default_rng(0)
    n = 1024
    args = [rng.random(n, dtype=np.float32),
            rng.random(n, dtype=np.float32),
            np.zeros(n, dtype=np.float32), n]
    return KernelProfile.collect(kernel, args, NDRange.create(n, 16))


class TestExploration:
    def test_infeasible_points_rejected_with_reason(self, profile):
        result = explore_design_space(
            profile, device=STRATIX10_SX2800,
            core_counts=(2, 32), warp_sizes=(8,), thread_sizes=(16,),
        )
        assert len(result.candidates) == 1
        assert len(result.rejected) == 1
        geometry, reason = result.rejected[0]
        assert geometry == (32, 8, 16)
        assert reason in ("aluts", "ffs", "bram", "dsps")

    def test_all_candidates_fit_device(self, profile):
        result = explore_design_space(profile, device=STRATIX10_MX2100,
                                      core_counts=(1, 2, 4, 8, 16))
        for cand in result.candidates:
            assert cand.area.aluts <= STRATIX10_MX2100.aluts
            assert cand.area.brams <= STRATIX10_MX2100.brams

    def test_best_prefers_simulated(self, profile):
        calls = []

        def fake_sim(config):
            calls.append(config.label())
            # Invert the analytical order: the "worst" predicted of the
            # simulated set gets the best simulated time.
            return 1000 - len(calls)

        result = explore_design_space(
            profile, core_counts=(2,), warp_sizes=(2, 4),
            thread_sizes=(4,), simulate_top=2, simulate=fake_sim,
        )
        assert len(calls) == 2
        best = result.best
        assert best.simulated_cycles is not None
        assert best.simulated_cycles == min(
            c.simulated_cycles for c in result.candidates
            if c.simulated_cycles is not None)

    def test_best_without_simulation_uses_prediction(self, profile):
        result = explore_design_space(profile, core_counts=(2, 4),
                                      warp_sizes=(4,), thread_sizes=(4, 8))
        best = result.best
        assert best.prediction.cycles == min(
            c.prediction.cycles for c in result.candidates)

    def test_all_rejected_raises_descriptive_error(self, profile):
        from repro.errors import ExplorationError, SynthesisError

        # Geometries far beyond the SX2800: every point area-rejected.
        result = explore_design_space(
            profile, device=STRATIX10_SX2800,
            core_counts=(64, 128), warp_sizes=(16,), thread_sizes=(16,),
        )
        assert not result.candidates
        with pytest.raises(ExplorationError) as exc:
            result.best
        assert isinstance(exc.value, SynthesisError)
        assert STRATIX10_SX2800.name in str(exc.value)
        assert exc.value.rejection_counts
        assert sum(exc.value.rejection_counts.values()) == len(
            result.rejected)

    def test_parallel_verification_matches_serial(self, profile):
        serial = explore_design_space(
            profile, core_counts=(2,), warp_sizes=(2, 4),
            thread_sizes=(4,), simulate_top=2, simulate=_fake_simulate,
            jobs=1,
        )
        parallel = explore_design_space(
            profile, core_counts=(2,), warp_sizes=(2, 4),
            thread_sizes=(4,), simulate_top=2, simulate=_fake_simulate,
            jobs=2,
        )
        serial_cycles = {c.config.label(): c.simulated_cycles
                         for c in serial.candidates}
        parallel_cycles = {c.config.label(): c.simulated_cycles
                          for c in parallel.candidates}
        assert serial_cycles == parallel_cycles

    def test_render(self, profile):
        result = explore_design_space(profile, core_counts=(2,),
                                      warp_sizes=(2, 4), thread_sizes=(4,))
        text = result.render()
        assert "Design-space exploration" in text
        assert "2c2w4t" in text or "2c4w4t" in text
