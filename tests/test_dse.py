"""Tests for the design-space-exploration harness."""

import numpy as np
import pytest

from repro.harness.dse import (
    Candidate,
    DSEResult,
    explore_design_space,
    launch_rejection,
    pareto_frontier,
    workload_rejection,
)
from repro.hls import STRATIX10_MX2100, STRATIX10_SX2800
from repro.ocl import NDRange
from repro.vortex import KernelProfile, VortexConfig
from repro.vortex.analytical import Prediction
from repro.vortex.area import VortexAreaReport
from repro.benchmarks import get_benchmark


def _fake_simulate(config):
    """Deterministic, spawn-picklable stand-in for a SimX run."""
    return config.cores * 1000 + config.warps * 10 + config.threads


@pytest.fixture(scope="module")
def profile():
    bench = get_benchmark("vecadd")
    kernel = bench.build()[0]
    rng = np.random.default_rng(0)
    n = 1024
    args = [rng.random(n, dtype=np.float32),
            rng.random(n, dtype=np.float32),
            np.zeros(n, dtype=np.float32), n]
    return KernelProfile.collect(kernel, args, NDRange.create(n, 16))


class TestExploration:
    def test_infeasible_points_rejected_with_reason(self, profile):
        result = explore_design_space(
            profile, device=STRATIX10_SX2800,
            core_counts=(2, 32), warp_sizes=(8,), thread_sizes=(16,),
        )
        assert len(result.candidates) == 1
        assert len(result.rejected) == 1
        geometry, reason = result.rejected[0]
        assert geometry == (32, 8, 16)
        assert reason in ("aluts", "ffs", "bram", "dsps")

    def test_all_candidates_fit_device(self, profile):
        result = explore_design_space(profile, device=STRATIX10_MX2100,
                                      core_counts=(1, 2, 4, 8, 16))
        for cand in result.candidates:
            assert cand.area.aluts <= STRATIX10_MX2100.aluts
            assert cand.area.brams <= STRATIX10_MX2100.brams

    def test_best_prefers_simulated(self, profile):
        calls = []

        def fake_sim(config):
            calls.append(config.label())
            # Invert the analytical order: the "worst" predicted of the
            # simulated set gets the best simulated time.
            return 1000 - len(calls)

        result = explore_design_space(
            profile, core_counts=(2,), warp_sizes=(2, 4),
            thread_sizes=(4,), simulate_top=2, simulate=fake_sim,
        )
        assert len(calls) == 2
        best = result.best
        assert best.simulated_cycles is not None
        assert best.simulated_cycles == min(
            c.simulated_cycles for c in result.candidates
            if c.simulated_cycles is not None)

    def test_best_without_simulation_uses_prediction(self, profile):
        result = explore_design_space(profile, core_counts=(2, 4),
                                      warp_sizes=(4,), thread_sizes=(4, 8))
        best = result.best
        assert best.prediction.cycles == min(
            c.prediction.cycles for c in result.candidates)

    def test_all_rejected_raises_descriptive_error(self, profile):
        from repro.errors import ExplorationError, SynthesisError

        # Geometries far beyond the SX2800: every point area-rejected.
        result = explore_design_space(
            profile, device=STRATIX10_SX2800,
            core_counts=(64, 128), warp_sizes=(16,), thread_sizes=(16,),
        )
        assert not result.candidates
        with pytest.raises(ExplorationError) as exc:
            result.best
        assert isinstance(exc.value, SynthesisError)
        assert STRATIX10_SX2800.name in str(exc.value)
        assert exc.value.rejection_counts
        assert sum(exc.value.rejection_counts.values()) == len(
            result.rejected)

    def test_parallel_verification_matches_serial(self, profile):
        serial = explore_design_space(
            profile, core_counts=(2,), warp_sizes=(2, 4),
            thread_sizes=(4,), simulate_top=2, simulate=_fake_simulate,
            jobs=1,
        )
        parallel = explore_design_space(
            profile, core_counts=(2,), warp_sizes=(2, 4),
            thread_sizes=(4,), simulate_top=2, simulate=_fake_simulate,
            jobs=2,
        )
        serial_cycles = {c.config.label(): c.simulated_cycles
                         for c in serial.candidates}
        parallel_cycles = {c.config.label(): c.simulated_cycles
                          for c in parallel.candidates}
        assert serial_cycles == parallel_cycles

    def test_render(self, profile):
        result = explore_design_space(profile, core_counts=(2,),
                                      warp_sizes=(2, 4), thread_sizes=(4,))
        text = result.render()
        assert "Design-space exploration" in text
        assert "2c2w4t" in text or "2c4w4t" in text


# -- hierarchical mode: frontier, tie-breaking, screens ----------------------


def _cand(cores, warps, threads, cycles, aluts, simulated=None,
          sim_error=None):
    """A hand-built candidate (no models involved)."""
    config = VortexConfig(cores=cores, warps=warps, threads=threads)
    return Candidate(
        config=config,
        area=VortexAreaReport(config=config, aluts=aluts, ffs=0, brams=0,
                              dsps=0),
        prediction=Prediction(config_label=config.label(),
                              issue_bound=float(cycles), memory_bound=0.0,
                              latency_bound=0.0),
        simulated_cycles=simulated,
        sim_error=sim_error,
    )


class TestParetoFrontier:
    def test_dominated_points_dropped(self):
        a = _cand(1, 2, 2, cycles=100, aluts=10)
        b = _cand(2, 2, 2, cycles=200, aluts=5)
        dominated = _cand(4, 2, 2, cycles=300, aluts=20)  # slower & bigger
        frontier = pareto_frontier([dominated, b, a])
        assert [c.geometry for c in frontier] == [a.geometry, b.geometry]

    def test_ties_keep_single_representative(self):
        a = _cand(2, 2, 2, cycles=100, aluts=10)
        b = _cand(2, 2, 4, cycles=100, aluts=10)  # identical both axes
        frontier = pareto_frontier([b, a])
        assert len(frontier) == 1
        assert frontier[0].config.label() == min(a.config.label(),
                                                 b.config.label())

    def test_frontier_is_fastest_first_and_area_decreasing(self):
        cands = [_cand(c, 2, 2, cycles=cyc, aluts=al)
                 for c, cyc, al in ((1, 300, 3), (2, 100, 9),
                                    (4, 200, 6), (8, 250, 8))]
        frontier = pareto_frontier(cands)
        cycles = [c.prediction.cycles for c in frontier]
        aluts = [c.area.aluts for c in frontier]
        assert cycles == sorted(cycles)
        assert aluts == sorted(aluts, reverse=True)
        assert (8, 2, 2) not in [c.geometry for c in frontier]


class TestBestTieBreaking:
    def test_simulated_beats_predicted(self):
        fast_pred = _cand(1, 2, 2, cycles=10, aluts=5)
        slow_sim = _cand(2, 2, 2, cycles=500, aluts=9, simulated=400)
        result = DSEResult(device=STRATIX10_SX2800,
                           candidates=[fast_pred, slow_sim])
        assert result.best is slow_sim

    def test_simulated_tie_breaks_to_smaller_area_then_label(self):
        big = _cand(4, 2, 2, cycles=100, aluts=20, simulated=700)
        small = _cand(2, 2, 2, cycles=100, aluts=10, simulated=700)
        result = DSEResult(device=STRATIX10_SX2800,
                           candidates=[big, small])
        assert result.best is small
        twin_a = _cand(2, 2, 4, cycles=100, aluts=10, simulated=700)
        twin_b = _cand(2, 4, 2, cycles=100, aluts=10, simulated=700)
        result = DSEResult(device=STRATIX10_SX2800,
                           candidates=[twin_b, twin_a])
        assert result.best.config.label() == min(twin_a.config.label(),
                                                 twin_b.config.label())

    def test_sim_errors_do_not_count_as_simulated(self):
        errored = _cand(1, 2, 2, cycles=10, aluts=5,
                        sim_error="ERROR(RuntimeLaunchError)")
        ok = _cand(2, 2, 2, cycles=50, aluts=9)
        result = DSEResult(device=STRATIX10_SX2800,
                           candidates=[errored, ok])
        # nothing was *successfully* simulated: prediction decides
        assert result.best is errored

    def test_predicted_tie_breaks_to_smaller_area(self):
        big = _cand(4, 2, 2, cycles=100, aluts=20)
        small = _cand(2, 2, 2, cycles=100, aluts=10)
        result = DSEResult(device=STRATIX10_SX2800,
                           candidates=[big, small])
        assert result.best is small


class TestScreens:
    def test_launch_rejection(self):
        assert launch_rejection(VortexConfig(cores=4, warps=4,
                                             threads=4)) is None
        assert launch_rejection(VortexConfig(cores=32, warps=8,
                                             threads=2)) == "group-slots"
        assert launch_rejection(VortexConfig(cores=8, warps=16,
                                             threads=32)) == "stack-region"

    def test_workload_rejection_vecadd(self):
        reject = workload_rejection("vecadd", 1024)
        # local = min(16, w*t): 16 divides 1024, 12 does not
        assert reject(VortexConfig(cores=2, warps=4, threads=4)) is None
        assert reject(VortexConfig(cores=2, warps=4,
                                   threads=3)) == "workgroup"

    def test_workload_rejection_transpose(self):
        reject = workload_rejection("transpose", 1024)  # dim = 32
        # cap=16 -> 4x4 tile divides 32
        assert reject(VortexConfig(cores=2, warps=4, threads=4)) is None
        # cap=12 -> lx=4, ly=3: 3 does not divide 32
        assert reject(VortexConfig(cores=2, warps=4,
                                   threads=3)) == "workgroup"

    def test_workload_rejection_unknown_benchmark_passes_all(self):
        reject = workload_rejection("sgemm", 1024)
        assert reject(VortexConfig(cores=2, warps=4, threads=3)) is None

    def test_reject_hook_recorded_with_reason(self, profile):
        result = explore_design_space(
            profile, core_counts=(2,), warp_sizes=(4,),
            thread_sizes=(3, 4), reject=workload_rejection("vecadd", 1024),
        )
        assert [g for g, r in result.rejected
                if r == "workgroup"] == [(2, 4, 3)]
        assert [c.geometry for c in result.candidates] == [(2, 4, 4)]


class TestHierarchicalExploration:
    def test_confirms_only_the_frontier(self, profile):
        simulated = []

        def fake_sim(config):
            simulated.append(config.label())
            return 1_000_000

        result = explore_design_space(
            profile, core_counts=(1, 2, 4), warp_sizes=(2, 4, 8),
            thread_sizes=(2, 4, 8), confirm_frontier=True,
            simulate=fake_sim,
        )
        frontier_labels = {c.config.label() for c in result.frontier}
        assert set(simulated) == frontier_labels
        assert 0 < len(frontier_labels) < len(result.candidates)

    def test_frontier_cap_limits_confirmations(self, profile):
        simulated = []

        def fake_sim(config):
            simulated.append(config.label())
            return 1_000_000

        explore_design_space(
            profile, core_counts=(1, 2, 4), warp_sizes=(2, 4, 8),
            thread_sizes=(2, 4, 8), confirm_frontier=True,
            frontier_cap=2, simulate=fake_sim,
        )
        assert len(simulated) == 2

    def test_prune_keeps_a_floor_of_three(self, profile):
        simulated = []

        def fake_sim(config):
            simulated.append(config.label())
            return 1_000_000

        result = explore_design_space(
            profile, core_counts=(1, 2, 4), warp_sizes=(2, 4, 8),
            thread_sizes=(2, 4, 8), confirm_frontier=True,
            prune_rel_err=0.0, simulate=fake_sim,
        )
        # a zero stated error would prune to 1; the floor hedges to 3
        assert len(simulated) == min(3, len(result.frontier))

    def test_screen_throughput_recorded(self, profile):
        result = explore_design_space(profile, core_counts=(1, 2, 4, 8),
                                      warp_sizes=(2, 4, 8, 16),
                                      thread_sizes=(2, 4, 8, 16))
        assert result.screened == 64
        assert result.screen_seconds > 0.0
        assert result.screen_points_per_sec > 0.0

    def test_payload_is_bounded_and_complete(self, profile):
        result = explore_design_space(
            profile, core_counts=(1, 2, 4), warp_sizes=(2, 4, 8, 16),
            thread_sizes=(2, 4, 8, 16), confirm_frontier=True,
            simulate=lambda config: 12345,
        )
        payload = result.to_payload()
        assert payload["screened"] == 48
        assert payload["feasible"] == len(result.candidates)
        assert payload["rejected"] == len(result.rejected)
        assert sum(payload["rejected_reasons"].values()) \
            == payload["rejected"]
        # only frontier/simulated candidates are itemised
        assert len(payload["candidates"]) < payload["feasible"]
        for row in payload["candidates"]:
            assert row["on_frontier"] or row["simulated_cycles"] is not None
        assert payload["best"]["config"] == result.best.config.label()
        assert payload["frontier_size"] == len(result.frontier)
