"""Tests for the Vortex ISA encoding, assembler, and disassembler."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CompilationError
from repro.vortex.asm import Assembler, disassemble
from repro.vortex.isa import (
    CSR,
    Fmt,
    Instruction,
    SPECS,
    decode,
    encode,
    format_instruction,
)

regs = st.integers(min_value=0, max_value=31)


def _imm_strategy(mnemonic):
    fmt = SPECS[mnemonic].fmt
    if mnemonic in ("slli", "srli", "srai"):
        return st.integers(0, 31)
    if fmt is Fmt.I or fmt is Fmt.S:
        return st.integers(-2048, 2047)
    if fmt is Fmt.CSR:
        return st.sampled_from([int(c) for c in CSR])
    if fmt is Fmt.B:
        return st.integers(-2048, 2046).map(lambda x: x * 2)
    if fmt is Fmt.U:
        return st.integers(-(2**19), 2**19 - 1)
    if fmt is Fmt.J:
        return st.integers(-(2**19), 2**19 - 1).map(lambda x: x * 2)
    return st.just(0)


@st.composite
def instructions(draw):
    mnemonic = draw(st.sampled_from(sorted(SPECS)))
    return Instruction(
        mnemonic,
        rd=draw(regs),
        rs1=draw(regs),
        rs2=draw(regs) if SPECS[mnemonic].fmt in (Fmt.R, Fmt.S, Fmt.B, Fmt.AMO)
        else 0,
        imm=draw(_imm_strategy(mnemonic)),
    )


class TestEncoding:
    @given(instructions())
    def test_roundtrip(self, ins):
        word = encode(ins)
        assert 0 <= word < 2**32
        back = decode(word)
        assert back.mnemonic == ins.mnemonic
        spec = SPECS[ins.mnemonic]
        if spec.fmt in (Fmt.R, Fmt.AMO):
            assert (back.rd, back.rs1, back.rs2) == (ins.rd, ins.rs1, ins.rs2)
        elif spec.fmt is Fmt.I or spec.fmt is Fmt.CSR:
            assert (back.rd, back.rs1, back.imm) == (ins.rd, ins.rs1, ins.imm)
        elif spec.fmt is Fmt.S:
            assert (back.rs1, back.rs2, back.imm) == (ins.rs1, ins.rs2, ins.imm)
        elif spec.fmt is Fmt.B:
            assert (back.rs1, back.rs2, back.imm) == (ins.rs1, ins.rs2, ins.imm)
        elif spec.fmt is Fmt.U:
            assert (back.rd, back.imm) == (ins.rd, ins.imm)
        elif spec.fmt is Fmt.J:
            assert (back.rd, back.imm) == (ins.rd, ins.imm)

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(CompilationError):
            Instruction("bogus")

    def test_known_encoding_addi(self):
        # addi x5, x0, 42 -> imm=42, rs1=0, f3=0, rd=5, op=0010011
        word = encode(Instruction("addi", rd=5, rs1=0, imm=42))
        assert word == (42 << 20) | (5 << 7) | 0b0010011

    def test_known_encoding_add(self):
        word = encode(Instruction("add", rd=1, rs1=2, rs2=3))
        assert word == (3 << 20) | (2 << 15) | (1 << 7) | 0b0110011


class TestAssembler:
    def test_forward_and_backward_labels(self):
        asm = Assembler()
        asm.label("start")
        asm.emit("addi", rd=5, rs1=0, imm=1)
        asm.emit("beq", rs1=5, rs2=0, label="end")
        asm.j("start")
        asm.label("end")
        asm.emit("halt")
        prog = asm.assemble(code_base=0x1000)
        assert prog.labels["start"] == 0x1000
        assert prog.labels["end"] == 0x100C
        beq = prog.instructions[1]
        assert beq.imm == 0x100C - 0x1004
        jal = prog.instructions[2]
        assert jal.imm == 0x1000 - 0x1008

    def test_undefined_label_raises(self):
        asm = Assembler()
        asm.j("nowhere")
        with pytest.raises(CompilationError, match="undefined label"):
            asm.assemble()

    def test_duplicate_label_raises(self):
        asm = Assembler()
        asm.label("a")
        with pytest.raises(CompilationError, match="duplicate"):
            asm.label("a")

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_li_materialises_any_constant(self, value):
        asm = Assembler()
        asm.li(5, value)
        prog = asm.assemble()
        # Simulate the sequence.
        reg = 0
        for ins in prog.instructions:
            if ins.mnemonic == "lui":
                reg = (ins.imm << 12) & 0xFFFFFFFF
            elif ins.mnemonic == "addi":
                reg = (reg + ins.imm) & 0xFFFFFFFF
        expected = value & 0xFFFFFFFF
        assert reg == expected

    def test_index_of_pc(self):
        asm = Assembler()
        asm.emit("addi", rd=1, rs1=0, imm=0)
        asm.emit("halt")
        prog = asm.assemble(code_base=0x2000)
        assert prog.index_of_pc(0x2000) == 0
        assert prog.index_of_pc(0x2004) == 1
        with pytest.raises(CompilationError):
            prog.index_of_pc(0x2008)
        with pytest.raises(CompilationError):
            prog.index_of_pc(0x2002)


class TestDisassembler:
    def test_listing_contains_labels_and_mnemonics(self):
        asm = Assembler()
        asm.label("entry")
        asm.emit("addi", rd=5, rs1=0, imm=7)
        asm.emit("lw", rd=6, rs1=5, imm=4)
        asm.emit("fadd.s", rd=2, rs1=3, rs2=4)
        asm.emit("split", rs1=7)
        asm.emit("join")
        asm.emit("halt")
        text = disassemble(asm.assemble(0x1000))
        assert "entry:" in text
        assert "addi x5, x0, 7" in text
        assert "lw x6, 4(x5)" in text
        assert "fadd.s f2, f3, f4" in text
        assert "split x7" in text
        assert "join" in text

    @given(instructions())
    def test_format_never_crashes(self, ins):
        assert isinstance(format_instruction(ins), str)
