"""Tests for the IR verifier and kernel cloning."""

import numpy as np
import pytest

from repro.errors import IRError, TypeMismatchError
from repro.ocl import (
    BOOL,
    GLOBAL_FLOAT32,
    GLOBAL_INT32,
    INT32,
    KernelBuilder,
    NDRange,
    Opcode,
    interpret,
    validate,
)
from repro.ocl.ir import Block, Const, Instr, Kernel, clone_kernel


def looped_kernel():
    b = KernelBuilder("looped")
    out = b.param("out", GLOBAL_INT32)
    gid = b.global_id(0)
    acc = b.var("acc", INT32, init=0)
    with b.for_range(0, 5) as i:
        with b.if_(b.eq(b.rem(i, 2), 0)):
            acc.set(b.add(acc.get(), b.mul(i, gid)))
    b.store(out, gid, acc.get())
    return b.finish()


class TestValidator:
    def test_builder_output_always_validates(self):
        validate(looped_kernel())

    def test_missing_terminator_rejected(self):
        k = Kernel("bad")
        blk = k.add_block("entry")
        blk.append(Instr(Opcode.GID, INT32, [], {"dim": 0}, name="g"))
        with pytest.raises(IRError, match="terminator"):
            validate(k)

    def test_terminator_mid_block_rejected(self):
        k = Kernel("bad")
        blk = k.add_block("entry")
        # Bypass Block.append's own guard to test the verifier.
        ret1 = Instr(Opcode.RET, None, [])
        ret2 = Instr(Opcode.RET, None, [])
        blk.instrs.extend([ret1, ret2])
        with pytest.raises(IRError):
            validate(k)

    def test_foreign_branch_target_rejected(self):
        k = Kernel("bad")
        blk = k.add_block("entry")
        other = Block("foreign")
        blk.append(Instr(Opcode.BR, None, [], targets=[other]))
        with pytest.raises(IRError, match="foreign"):
            validate(k)

    def test_type_mismatch_rejected(self):
        k = Kernel("bad")
        blk = k.add_block("entry")
        c = Const(INT32, 1)
        f = Const(BOOL, True)
        blk.append(Instr(Opcode.ADD, INT32, [c, f], name="x"))
        blk.append(Instr(Opcode.RET, None, []))
        with pytest.raises(TypeMismatchError):
            validate(k)

    def test_bad_icmp_predicate_rejected(self):
        k = Kernel("bad")
        blk = k.add_block("entry")
        c = Const(INT32, 1)
        blk.append(Instr(Opcode.ICMP, BOOL, [c, c], {"pred": "weird"},
                         name="x"))
        blk.append(Instr(Opcode.RET, None, []))
        with pytest.raises(TypeMismatchError, match="predicate"):
            validate(k)

    def test_use_before_def_rejected(self):
        k = Kernel("bad")
        b1 = k.add_block("entry")
        b2 = k.add_block("next")
        late = Instr(Opcode.GID, INT32, [], {"dim": 0}, name="late")
        use = Instr(Opcode.ADD, INT32, [late, Const(INT32, 1)], name="use")
        b1.append(use)
        b1.append(Instr(Opcode.BR, None, [], targets=[b2]))
        b2.append(late)
        b2.append(Instr(Opcode.RET, None, []))
        with pytest.raises(IRError, match="before definition"):
            validate(k)

    def test_duplicate_names_rejected(self):
        k = Kernel("bad")
        blk = k.add_block("entry")
        a = Instr(Opcode.GID, INT32, [], {"dim": 0}, name="same")
        b = Instr(Opcode.GID, INT32, [], {"dim": 1}, name="same")
        blk.append(a)
        blk.append(b)
        blk.append(Instr(Opcode.RET, None, []))
        with pytest.raises(IRError, match="duplicate"):
            validate(k)


class TestClone:
    def test_clone_validates_and_is_disjoint(self):
        original = looped_kernel()
        copy = clone_kernel(original)
        validate(copy)
        orig_ids = {id(i) for i in original.instructions()}
        copy_ids = {id(i) for i in copy.instructions()}
        assert not orig_ids & copy_ids
        assert {id(b) for b in original.blocks}.isdisjoint(
            {id(b) for b in copy.blocks})

    def test_clone_shares_params(self):
        original = looped_kernel()
        copy = clone_kernel(original)
        assert copy.params == original.params

    def test_clone_behaves_identically(self):
        original = looped_kernel()
        copy = clone_kernel(original)
        out_a = np.zeros(8, dtype=np.int32)
        out_b = np.zeros(8, dtype=np.int32)
        interpret(original, [out_a], NDRange.create(8, 4))
        interpret(copy, [out_b], NDRange.create(8, 4))
        np.testing.assert_array_equal(out_a, out_b)

    def test_mutating_clone_leaves_original(self):
        from repro.passes import cse, dce

        original = looped_kernel()
        before = sum(1 for _ in original.instructions())
        copy = clone_kernel(original)
        cse.run(copy)
        dce.run(copy)
        after = sum(1 for _ in original.instructions())
        assert before == after

    def test_clone_preserves_directives(self):
        b = KernelBuilder("d")
        p = b.param("p", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        v = b.load(p, b.local_id(0), pipelined=True)
        b.store(out, b.global_id(0), v)
        original = b.finish()
        copy = clone_kernel(original)
        assert len(copy.directives) == 1
        kinds = set(copy.directives.values())
        assert kinds == {"pipelined_load"}

    def test_clone_preserves_local_arrays(self):
        b = KernelBuilder("arr")
        out = b.param("out", GLOBAL_INT32)
        tile = b.local_array("tile", INT32, 8)
        lid = b.local_id(0)
        b.store(tile, lid, lid)
        b.barrier()
        b.store(out, b.global_id(0), b.load(tile, lid))
        original = b.finish()
        copy = clone_kernel(original)
        assert len(copy.arrays) == 1
        assert copy.arrays[0] is not original.arrays[0]
        assert copy.arrays[0].size == 8
        validate(copy)
