"""Property-based differential testing: randomly generated kernels must
produce bit-identical results on the reference interpreter and the
Vortex cycle simulator (which executes compiled machine code).

The generator builds structured programs over mutable int variables:
arithmetic/bitwise expressions, divergent if/else regions, and bounded
divergent loops — exactly the constructs whose codegen (SPLIT/JOIN/PRED,
phi copies, register allocation) is most delicate.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ocl import (
    Context,
    FLOAT32,
    GLOBAL_FLOAT32,
    GLOBAL_INT32,
    INT32,
    KernelBuilder,
    NDRange,
    interpret,
    validate,
)
from repro.vortex import VortexBackend, VortexConfig

N_ITEMS = 16
LOCAL = 8
CONFIG = VortexConfig(cores=2, warps=2, threads=4)

# -- program generator -------------------------------------------------------

_BINOPS = ("add", "sub", "mul", "and_", "or_", "xor", "min", "max")
_CMPS = ("lt", "le", "gt", "ge", "eq", "ne")


@st.composite
def programs(draw):
    """A program is a list of statements over 3 variables."""
    def stmts(depth):
        n = draw(st.integers(1, 4 if depth == 0 else 2))
        out = []
        for _ in range(n):
            kind = draw(st.sampled_from(
                ["assign", "assign", "assign", "if", "loop"]
                if depth < 2 else ["assign"]))
            if kind == "assign":
                out.append((
                    "assign",
                    draw(st.integers(0, 2)),  # target var
                    draw(st.sampled_from(_BINOPS)),
                    draw(st.integers(0, 3)),  # operand a (3 = gid)
                    draw(st.one_of(st.integers(0, 3),
                                   st.integers(-7, 7).map(lambda c: ("c", c)))),
                ))
            elif kind == "if":
                out.append((
                    "if",
                    draw(st.sampled_from(_CMPS)),
                    draw(st.integers(0, 3)),
                    draw(st.integers(-4, 4)),
                    stmts(depth + 1),
                    stmts(depth + 1) if draw(st.booleans()) else None,
                ))
            else:
                out.append((
                    "loop",
                    draw(st.integers(1, 3)),  # static trip count
                    stmts(depth + 1),
                ))
        return out

    return stmts(0)


def build_kernel(program):
    b = KernelBuilder("fuzz")
    out0 = b.param("out0", GLOBAL_INT32)
    out1 = b.param("out1", GLOBAL_INT32)
    out2 = b.param("out2", GLOBAL_INT32)
    gid = b.global_id(0)
    vars_ = [b.var(f"v{i}", INT32, init=i + 1) for i in range(3)]

    def operand(spec):
        if isinstance(spec, tuple) and spec[0] == "c":
            return b.const(spec[1])
        if spec == 3:
            return gid
        return vars_[spec].get()

    def emit(stmts):
        for s in stmts:
            if s[0] == "assign":
                _, tgt, op, a, c = s
                vars_[tgt].set(getattr(b, op)(operand(a), operand(c)))
            elif s[0] == "if":
                _, cmp_, a, c, then_s, else_s = s
                cond = getattr(b, cmp_)(operand(a), b.const(c))
                if else_s is None:
                    with b.if_(cond):
                        emit(then_s)
                else:
                    with b.if_else(cond) as (t, e):
                        with t:
                            emit(then_s)
                        with e:
                            emit(else_s)
            else:
                _, trips, body = s
                with b.for_range(0, trips):
                    emit(body)

    emit(program)
    for i, v in enumerate(vars_):
        b.store([out0, out1, out2][i], gid, v.get())
    return b.finish()


@given(programs())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_random_programs_match(program):
    kernel = build_kernel(program)
    validate(kernel)

    ref = [np.zeros(N_ITEMS, dtype=np.int32) for _ in range(3)]
    interpret(kernel, list(ref), NDRange.create(N_ITEMS, 8))

    ctx = Context(VortexBackend(CONFIG))
    prog = ctx.program([kernel])
    bufs = [ctx.alloc(N_ITEMS, np.int32) for _ in range(3)]
    prog.launch("fuzz", bufs, N_ITEMS, 8)

    for r, buf in zip(ref, bufs):
        np.testing.assert_array_equal(buf.read(), r)


@given(programs())
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_cse_preserves_semantics(program):
    """The optimizer pipeline (CSE + DCE on a clone) must not change
    observable behaviour of any generated program."""
    from repro.ocl.ir import clone_kernel
    from repro.passes import cse, dce

    kernel = build_kernel(program)
    optimized = clone_kernel(kernel)
    cse.run(optimized)
    dce.run(optimized)
    validate(optimized)

    ref = [np.zeros(N_ITEMS, dtype=np.int32) for _ in range(3)]
    opt = [np.zeros(N_ITEMS, dtype=np.int32) for _ in range(3)]
    interpret(kernel, list(ref), NDRange.create(N_ITEMS, 8))
    interpret(optimized, list(opt), NDRange.create(N_ITEMS, 8))
    for r, o in zip(ref, opt):
        np.testing.assert_array_equal(o, r)


# -- float32 arithmetic ------------------------------------------------------
#
# fadd/fsub/fmul/fmin/fmax over *finite* operands are bit-exact across the
# interpreter (binary32 rounding after every op) and SimX (numpy float32
# vector ALU): double rounding through float64 is innocuous for the basic
# operations (53 >= 2*24 + 2). Every assignment is clamped to +/-1e6 so no
# intermediate can reach infinity — keeping NaN (where Python's min and
# numpy's fmin legitimately disagree) out of the reachable value space.

_FLOAT_OPS = ("add", "sub", "mul", "min", "max")


@st.composite
def float_programs(draw):
    """Statements over 3 float vars; control flow stays on int gid."""
    def stmts(depth):
        n = draw(st.integers(1, 4 if depth == 0 else 2))
        out = []
        for _ in range(n):
            kind = draw(st.sampled_from(
                ["assign", "assign", "assign", "if", "loop"]
                if depth < 2 else ["assign"]))
            if kind == "assign":
                out.append((
                    "assign",
                    draw(st.integers(0, 2)),  # target var
                    draw(st.sampled_from(_FLOAT_OPS)),
                    draw(st.integers(0, 3)),  # operand a (3 = itof(gid))
                    draw(st.one_of(
                        st.integers(0, 3),
                        st.integers(-16, 16).map(lambda c: ("c", c / 4.0)),
                    )),
                ))
            elif kind == "if":
                out.append((
                    "if",
                    draw(st.sampled_from(_CMPS)),
                    draw(st.integers(-4, 4)),
                    stmts(depth + 1),
                    stmts(depth + 1) if draw(st.booleans()) else None,
                ))
            else:
                out.append(("loop", draw(st.integers(1, 3)), stmts(depth + 1)))
        return out

    return stmts(0)


def build_float_kernel(program):
    b = KernelBuilder("ffuzz")
    outs = [b.param(f"out{i}", GLOBAL_FLOAT32) for i in range(3)]
    gid = b.global_id(0)
    fgid = b.itof(gid)
    vars_ = [b.var(f"f{i}", FLOAT32, init=b.const(float(i + 1)))
             for i in range(3)]

    def operand(spec):
        if isinstance(spec, tuple) and spec[0] == "c":
            return b.const(spec[1])
        if spec == 3:
            return fgid
        return vars_[spec].get()

    def emit(stmts):
        for s in stmts:
            if s[0] == "assign":
                _, tgt, op, a, c = s
                val = getattr(b, op)(operand(a), operand(c))
                clamped = b.min(b.max(val, b.const(-1e6)), b.const(1e6))
                vars_[tgt].set(clamped)
            elif s[0] == "if":
                _, cmp_, c, then_s, else_s = s
                cond = getattr(b, cmp_)(gid, b.const(c))
                if else_s is None:
                    with b.if_(cond):
                        emit(then_s)
                else:
                    with b.if_else(cond) as (t, e):
                        with t:
                            emit(then_s)
                        with e:
                            emit(else_s)
            else:
                _, trips, body = s
                with b.for_range(0, trips):
                    emit(body)

    emit(program)
    for out, v in zip(outs, vars_):
        b.store(out, gid, v.get())
    return b.finish()


@given(float_programs())
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_random_float_programs_match(program):
    kernel = build_float_kernel(program)
    validate(kernel)

    ref = [np.zeros(N_ITEMS, dtype=np.float32) for _ in range(3)]
    interpret(kernel, list(ref), NDRange.create(N_ITEMS, 8))

    ctx = Context(VortexBackend(CONFIG))
    prog = ctx.program([kernel])
    bufs = [ctx.alloc(N_ITEMS, np.float32) for _ in range(3)]
    prog.launch("ffuzz", bufs, N_ITEMS, 8)

    for r, buf in zip(ref, bufs):
        assert np.all(np.isfinite(r)), "clamping must keep values finite"
        np.testing.assert_array_equal(buf.read(), r)


# -- barrier / local-memory kernels ------------------------------------------
#
# Rounds of store-to-local / barrier / read-back exercise warp-set dispatch,
# barrier synchronization and local-memory addressing. Barriers must stay in
# uniform control flow (the validator rejects divergent barriers), so the
# generated structure is fixed and only the data movement varies.

_MIX_OPS = ("add", "xor", "min", "max")


@st.composite
def barrier_programs(draw):
    rounds = draw(st.integers(1, 3))
    return [
        {
            "scale": draw(st.integers(-3, 3)),
            "offset": draw(st.integers(0, LOCAL - 1)),
            "op": draw(st.sampled_from(_MIX_OPS)),
        }
        for _ in range(rounds)
    ]


def build_barrier_kernel(rounds):
    b = KernelBuilder("bfuzz")
    out = b.param("out", GLOBAL_INT32)
    lmem = b.local_array("lmem", INT32, LOCAL)
    gid = b.global_id(0)
    lid = b.local_id(0)
    acc = b.var("acc", INT32, init=gid)
    for spec in rounds:
        b.store(lmem, lid, b.add(b.mul(acc.get(), spec["scale"]), gid))
        b.barrier()
        neighbour = b.load(lmem, b.rem(b.add(lid, spec["offset"]),
                                       b.const(LOCAL)))
        acc.set(getattr(b, spec["op"])(acc.get(), neighbour))
        # the next round's store must not race this round's reads
        b.barrier()
    b.store(out, gid, acc.get())
    return b.finish()


@given(barrier_programs())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
def test_barrier_local_memory_match(rounds):
    kernel = build_barrier_kernel(rounds)
    validate(kernel)

    ref = np.zeros(N_ITEMS, dtype=np.int32)
    interpret(kernel, [ref], NDRange.create(N_ITEMS, LOCAL))

    ctx = Context(VortexBackend(CONFIG))
    prog = ctx.program([kernel])
    buf = ctx.alloc(N_ITEMS, np.int32)
    prog.launch("bfuzz", [buf], N_ITEMS, LOCAL)
    np.testing.assert_array_equal(buf.read(), ref)


@given(st.integers(0, 2**32 - 1), st.integers(1, 31))
@settings(max_examples=30, deadline=None)
def test_shift_semantics_match(value, amount):
    """Shifts are a classic codegen/simulator divergence spot."""
    b = KernelBuilder("shifty")
    out = b.param("out", GLOBAL_INT32)
    v = b.const(value - 2**31)
    b.store(out, 0, b.shl(v, amount))
    b.store(out, 1, b.ashr(v, amount))
    b.store(out, 2, b.lshr(v, amount))
    kernel = b.finish()

    ref = np.zeros(4, dtype=np.int32)
    interpret(kernel, [ref], NDRange.create(1))
    ctx = Context(VortexBackend(CONFIG))
    prog = ctx.program([kernel])
    buf = ctx.alloc(4, np.int32)
    prog.launch("shifty", [buf], 1, 1)
    np.testing.assert_array_equal(buf.read(), ref)
