"""Tests for the OpenCL-style host API (Context / Buffer / Program)."""

import numpy as np
import pytest

from repro.errors import RuntimeLaunchError
from repro.ocl import (
    Context,
    GLOBAL_FLOAT32,
    GLOBAL_INT32,
    INT32,
    KernelBuilder,
    ReferenceBackend,
)


def scale_kernel():
    b = KernelBuilder("scale")
    x = b.param("x", GLOBAL_FLOAT32)
    n = b.param("n", INT32)
    gid = b.global_id(0)
    with b.if_(b.lt(gid, n)):
        b.store(x, gid, b.mul(b.load(x, gid), 2.0))
    return b.finish()


class TestBuffers:
    def test_buffer_copies_input(self):
        ctx = Context()
        data = np.ones(8, dtype=np.float32)
        buf = ctx.buffer(data)
        data[0] = 99.0
        assert buf.read()[0] == 1.0

    def test_buffer_promotes_default_int_dtype(self):
        ctx = Context()
        buf = ctx.buffer(np.array([1, 2, 3]))  # int64 on linux
        assert buf.dtype == np.int32

    def test_buffer_promotes_float64(self):
        ctx = Context()
        buf = ctx.buffer(np.array([1.0, 2.0]))
        assert buf.dtype == np.float32

    def test_alloc_zeroed(self):
        ctx = Context()
        buf = ctx.alloc(16, np.int32)
        assert (buf.read() == 0).all()
        assert buf.size == 16

    def test_2d_buffer_rejected(self):
        ctx = Context()
        with pytest.raises(RuntimeLaunchError):
            ctx.buffer(np.zeros((4, 4), dtype=np.float32))

    def test_write_shape_checked(self):
        ctx = Context()
        buf = ctx.alloc(8)
        with pytest.raises(RuntimeLaunchError):
            buf.write(np.zeros(4, dtype=np.float32))

    def test_read_returns_copy(self):
        ctx = Context()
        buf = ctx.alloc(4)
        snapshot = buf.read()
        snapshot[0] = 5.0
        assert buf.read()[0] == 0.0


class TestProgram:
    def test_launch_by_name(self):
        ctx = Context(ReferenceBackend())
        prog = ctx.program([scale_kernel()])
        buf = ctx.buffer(np.arange(8, dtype=np.float32))
        prog.launch("scale", [buf, 8], global_size=8, local_size=4)
        np.testing.assert_allclose(buf.read(), np.arange(8) * 2.0)

    def test_unknown_kernel_name(self):
        ctx = Context(ReferenceBackend())
        prog = ctx.program([scale_kernel()])
        with pytest.raises(RuntimeLaunchError, match="no kernel named"):
            prog.launch("nope", [], global_size=4)

    def test_buffer_required_for_pointer_args(self):
        ctx = Context(ReferenceBackend())
        prog = ctx.program([scale_kernel()])
        with pytest.raises(RuntimeLaunchError, match="Buffer"):
            prog.launch("scale", [np.zeros(8, dtype=np.float32), 8],
                        global_size=8)

    def test_wrong_arg_count(self):
        ctx = Context(ReferenceBackend())
        prog = ctx.program([scale_kernel()])
        buf = ctx.alloc(8)
        with pytest.raises(RuntimeLaunchError):
            prog.launch("scale", [buf], global_size=8)

    def test_multi_kernel_program(self):
        b = KernelBuilder("init")
        x = b.param("x", GLOBAL_INT32)
        b.store(x, b.global_id(0), b.global_id(0))
        init = b.finish()

        b2 = KernelBuilder("double")
        y = b2.param("y", GLOBAL_INT32)
        gid = b2.global_id(0)
        b2.store(y, gid, b2.mul(b2.load(y, gid), 2))
        double = b2.finish()

        ctx = Context(ReferenceBackend())
        prog = ctx.program([init, double])
        buf = ctx.alloc(8, np.int32)
        prog.launch("init", [buf], global_size=8)
        prog.launch("double", [buf], global_size=8)
        np.testing.assert_array_equal(buf.read(), np.arange(8) * 2)

    def test_stats_surface_printf(self):
        b = KernelBuilder("p")
        b.printf("hi %d", b.global_id(0))
        ctx = Context(ReferenceBackend())
        prog = ctx.program([b.finish()])
        stats = prog.launch("p", [], global_size=2)
        assert stats.printf_output == ["hi 0", "hi 1"]
        assert stats.backend == "reference"

    def test_default_context_uses_reference_backend(self):
        ctx = Context()
        assert ctx.backend.name == "reference"
