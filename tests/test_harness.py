"""Tests for the experiment harnesses (Tables I-IV; the Figure 7 sweep
has its own dedicated benchmark module and a smoke test here)."""

import pytest

from repro.harness import (
    PAPER_TABLE2,
    PAPER_TABLE4,
    render_heatmap,
    render_table,
    run_case_study,
    run_coverage,
    run_sweep,
    run_table3,
    run_table4,
)
from repro.vortex import VortexConfig


class TestRendering:
    def test_render_table_alignment(self):
        out = render_table(["a", "bbb"], [["x", "1"], ["yy", "22"]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len({len(l) for l in lines[2:]}) >= 1

    def test_render_heatmap_shades(self):
        values = {(2, 2): 1.0, (2, 4): 2.0, (4, 2): 1.5, (4, 4): 3.0}
        out = render_heatmap(values, title="H")
        assert "H" in out
        assert " 1.00" in out and " 3.00" in out


class TestCoverageHarness:
    @pytest.fixture(scope="class")
    def report(self):
        return run_coverage()

    def test_matches_paper(self, report):
        assert report.matches_paper()

    def test_counts(self, report):
        assert report.vortex_passes == 28
        assert report.hls_passes == 22

    def test_render_contains_reasons(self, report):
        text = report.render()
        assert "Not enough BRAM" in text
        assert "Atomics" in text
        assert text.count("X") == 6


class TestCaseStudyHarness:
    def test_bram_staircase(self):
        report = run_case_study()
        seq = report.bram_sequence()
        assert seq[0] > seq[1] > seq[2]
        for row, label in zip(report.rows, PAPER_TABLE2):
            assert row.label == label

    def test_render(self):
        text = run_case_study().render()
        assert "Original code" in text and "188%" in text


class TestAreaHarnesses:
    def test_table3_rows(self):
        report = run_table3()
        assert set(report.rows) == {"Vecadd", "Matmul", "Gauss", "BFS"}

    def test_table4_accuracy(self):
        report = run_table4()
        assert report.max_relative_error() < 0.02
        assert set(report.rows) == set(PAPER_TABLE4)


class TestSweepSmoke:
    def test_tiny_sweep_runs(self):
        # Full grid is exercised by benchmarks/test_fig7_sweep.py; here
        # just verify plumbing on a 2x2 corner with a small workload.
        result = run_sweep("vecadd", cores=2, n=512,
                           warp_sizes=(2, 4), thread_sizes=(2, 4),
                           base_config=VortexConfig(cores=2))
        assert len(result.cycles) == 4
        assert all(v > 0 for v in result.cycles.values())
        norm = result.normalized()
        assert min(norm.values()) == 1.0

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            run_sweep("sgemm")

    def test_custom_grid_renders_missing_cells_as_dash(self):
        # A sweep that omits the paper's quoted cells (8,8)/(4,4)/(8,4)
        # must render "-" in the comparison table, not KeyError.
        import math

        from repro.harness import render_comparison

        result = run_sweep("vecadd", cores=2, n=512,
                           warp_sizes=(2,), thread_sizes=(2, 4))
        assert math.isnan(result.ratio(8, 8))
        assert math.isnan(result.ratio(8, 4))
        table = render_comparison([result])
        assert "- / 1.27" in table
        assert "- / 1.11" in table
