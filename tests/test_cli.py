"""Smoke tests for every ``python -m repro`` subcommand.

Each test asserts exit code 0 and that the output looks like the
artifact it claims to regenerate — not the exact numbers (other tests
pin those), just that the CLI wiring stays sound.
"""

import json

import pytest

from repro.__main__ import main


def test_table1(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Vortex" in out and "/28" in out


def test_table2(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "auto-CSE ablation" in out


def test_table3(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Vecadd" in out


def test_table4(capsys):
    assert main(["table4"]) == 0
    out = capsys.readouterr().out
    assert "max relative error vs paper" in out


@pytest.mark.slow
def test_fig7(capsys):
    assert main(["fig7"]) == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "vecadd" in out and "transpose" in out


def test_no_subcommand_is_an_error(capsys):
    with pytest.raises(SystemExit) as exc:
        main([])
    assert exc.value.code == 2


def test_unknown_subcommand_is_an_error(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["table9"])
    assert exc.value.code == 2


# -- profile -----------------------------------------------------------------

@pytest.mark.parametrize("backend", ["interp", "simx", "hls"])
def test_profile_backends(backend, capsys, tmp_path):
    trace = tmp_path / f"{backend}.trace.json"
    assert main(["profile", "vecadd", "--backend", backend,
                 "--trace-out", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "== profile: vecadd" in out
    assert "counter" in out
    assert trace.exists()
    doc = json.loads(trace.read_text())
    assert doc["traceEvents"], "trace must contain events"
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert "X" in phases, "trace must contain at least one span"


def test_profile_json_summary(capsys, tmp_path):
    trace = tmp_path / "p.trace.json"
    summary = tmp_path / "p.json"
    assert main(["profile", "vecadd", "--backend", "simx",
                 "--trace-out", str(trace),
                 "--json-out", str(summary)]) == 0
    doc = json.loads(summary.read_text())
    assert doc["backend"] == "simx"
    assert doc["counters"]["simx.cycles"] > 0
    assert doc["events"]["spans"] > 0


def test_profile_geometry_flags(capsys, tmp_path):
    trace = tmp_path / "g.trace.json"
    assert main(["profile", "vecadd", "--backend", "simx",
                 "--cores", "2", "--warps", "2", "--threads", "8",
                 "--trace-out", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "== profile: vecadd" in out


def test_profile_unknown_benchmark(capsys, tmp_path):
    assert main(["profile", "no-such-benchmark",
                 "--trace-out", str(tmp_path / "x.json")]) == 1
    err = capsys.readouterr().err
    assert "error" in err.lower()


def test_profile_unknown_backend_rejected(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["profile", "vecadd", "--backend", "cuda"])
    assert exc.value.code == 2


# -- interrupt handling ------------------------------------------------------

def test_keyboard_interrupt_exits_130(capsys, monkeypatch):
    """Ctrl-C mid-campaign: orderly unwind, exit 130, no traceback."""
    from repro import harness

    def fake_run_coverage(**kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(harness, "run_coverage", fake_run_coverage)
    assert main(["table1"]) == 130
    err = capsys.readouterr().err
    assert "interrupted" in err
    assert "Traceback" not in err


def test_interrupt_closes_live_engines(capsys, monkeypatch, tmp_path):
    """The interrupt path tears down any worker pool still alive."""
    from repro import harness
    from repro.harness import ExperimentEngine

    class FakePool:
        _processes = {}

        def shutdown(self, wait=True, cancel_futures=False):
            self.down = True

    engine = ExperimentEngine(jobs=2)
    engine._pool = FakePool()  # a live pool without the spawn cost

    def fake_run_coverage(**kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr(harness, "run_coverage", fake_run_coverage)
    assert main(["table1"]) == 130
    assert "worker pool(s) closed" in capsys.readouterr().err
    assert engine._pool is None


def test_sigterm_is_routed_to_keyboard_interrupt(capsys, monkeypatch):
    """kill <pid> gets the same orderly unwind as Ctrl-C."""
    import os
    import signal
    import time

    from repro import harness

    def fake_run_coverage(**kwargs):
        os.kill(os.getpid(), signal.SIGTERM)
        time.sleep(5)  # the signal lands long before this expires
        raise AssertionError("SIGTERM handler never fired")

    monkeypatch.setattr(harness, "run_coverage", fake_run_coverage)
    assert main(["table1"]) == 130
    assert "interrupted" in capsys.readouterr().err


def test_submit_rejects_malformed_json(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["submit", "{not json", "--state-dir",
              "/nonexistent-service-dir"])
    assert "not valid JSON" in str(exc.value)


def test_client_commands_report_unavailable(capsys, tmp_path):
    """Client subcommands fail fast with a typed message (not a
    traceback) when no daemon serves the state dir."""
    state = str(tmp_path / "no-daemon")
    for argv in (["status", "--state-dir", state,
                  "--service-retries", "0"],
                 ["results", "j000001-aabbccddee", "--state-dir", state,
                  "--service-retries", "0"],
                 ["drain", "--state-dir", state,
                  "--service-retries", "0"]):
        assert main(argv) == 1
        err = capsys.readouterr().err
        assert "unavailable" in err
        assert "Traceback" not in err
