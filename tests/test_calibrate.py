"""Tests for the calibration subsystem (``repro.calibrate``).

The contract under test: a fit never degrades the hand-tuned model on
its own calibration set, the artifact's *stated* error bounds hold
where they were measured, and — the regression that matters for the
hierarchical DSE — calibrated predictions stay within a stated
tolerance of SimX ground truth across the full Figure 7 grid, i.e.
also on cells the fit never saw.
"""

import json

import pytest

from repro.calibrate import (
    CalibrationArtifact,
    load_calibration,
    run_calibration,
)
from repro.calibrate.fit import (
    VORTEX_CALIBRATION_CELLS,
    _msle,
    _sample_prediction,
    collect_vortex_samples,
    error_bounds,
)
from repro.errors import CalibrationError
from repro.harness.result_cache import ResultCache, code_fingerprint
from repro.harness.sweep import THREAD_SIZES, WARP_SIZES
from repro.hls.perf import HLSModelParams
from repro.vortex.analytical import VortexModelParams

#: Calibration-set scale: large enough that the issue/memory/latency
#: regimes separate, small enough that SimX ground truth stays cheap.
N = 1024
BENCHMARKS = ("vecadd", "transpose")

#: Stated tolerance for *held-out* Figure 7 cells. The artifact's own
#: bounds are measured on the calibration cells; the full grid includes
#: ten cells per benchmark the fit never saw, where the analytical
#: model's structural error (not its fitted constants) dominates.
FIG7_GRID_TOLERANCE = 0.75

FIG7_CELLS = tuple((w, t) for w in WARP_SIZES for t in THREAD_SIZES)


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    """One result cache for the module: the calibration cells are a
    subset of the Figure 7 grid, so the grid fixture below re-simulates
    only the held-out cells."""
    return ResultCache(tmp_path_factory.mktemp("calib-cache"))


@pytest.fixture(scope="module")
def artifact(cache):
    return run_calibration(benchmarks=BENCHMARKS, n=N, cache=cache)


@pytest.fixture(scope="module")
def grid_samples(cache):
    return collect_vortex_samples(benchmarks=BENCHMARKS, n=N,
                                  cells=FIG7_CELLS, cache=cache)


def _calibration_samples(grid_samples):
    cells = set(VORTEX_CALIBRATION_CELLS)
    return [s for s in grid_samples
            if (s.config.warps, s.config.threads) in cells]


class TestFitQuality:
    def test_fit_never_worse_than_defaults(self, artifact, grid_samples):
        samples = _calibration_samples(grid_samples)
        fitted = _msle(samples,
                       lambda s: _sample_prediction(s, vortex=artifact.vortex))
        stock = _msle(samples,
                      lambda s: _sample_prediction(
                          s, vortex=VortexModelParams()))
        assert fitted <= stock + 1e-12

    def test_stated_bounds_hold_on_calibration_set(self, artifact,
                                                   grid_samples):
        """The artifact's error bounds are a *measurement*: re-measuring
        the calibration cells with the fitted parameters must reproduce
        them (up to the artifact's rounding)."""
        samples = _calibration_samples(grid_samples)
        remeasured = error_bounds(samples, vortex=artifact.vortex)
        for bench in BENCHMARKS:
            stated = artifact.bound("vortex", bench)
            assert remeasured["vortex"][bench]["max_rel_err"] \
                <= stated + 1e-6
            # bounds are genuine fractions, not degenerate zeros/infs
            assert 0.0 <= stated < 1.0

    def test_fig7_grid_within_stated_tolerance(self, artifact,
                                               grid_samples):
        """Predicted vs simulated cycles across the full Figure 7 grid
        (16 cells per benchmark, most held out from the fit) stay within
        FIG7_GRID_TOLERANCE relative error. This is the bound that makes
        hierarchical DSE trustworthy: screening decisions are made on
        these predictions."""
        worst = {}
        for s in grid_samples:
            pred = _sample_prediction(s, vortex=artifact.vortex)
            rel = abs(pred - s.true_cycles) / s.true_cycles
            worst[s.benchmark] = max(worst.get(s.benchmark, 0.0), rel)
            assert rel <= FIG7_GRID_TOLERANCE, (
                f"{s.benchmark} {s.label}: predicted {pred:,.0f} vs "
                f"simulated {s.true_cycles:,.0f} — relative error "
                f"{rel:.2f} exceeds the stated {FIG7_GRID_TOLERANCE}")
        assert set(worst) == set(BENCHMARKS)

    def test_hls_screen_tracks_pipeline_model(self, artifact):
        """The HLS screen predictor is fitted against the full pipeline
        model across HLS_CALIBRATION_SIZES; its stated bound must be
        tight — the screen and the model share their cost structure."""
        for bench in BENCHMARKS:
            assert artifact.bound("hls", bench) <= 0.05


def test_unknown_benchmark_rejected_before_simulation():
    """No sweep workload exists for most Table I benchmarks: the
    calibrator must say so up front (typed, CLI-catchable), not
    surface an ImportError from the benchmark registry."""
    with pytest.raises(CalibrationError) as exc:
        run_calibration(benchmarks=("nosuchbench",), n=64)
    assert "nosuchbench" in str(exc.value)
    assert "vecadd" in str(exc.value)


class TestArtifact:
    def test_roundtrip(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "cal.json")
        loaded = load_calibration(path)
        assert loaded.fingerprint == artifact.fingerprint
        assert loaded.vortex == artifact.vortex
        assert loaded.hls == artifact.hls
        assert loaded.error_bounds == artifact.error_bounds

    def test_fingerprint_skew_rejected(self, artifact, tmp_path):
        stale = CalibrationArtifact(
            fingerprint="not-the-running-code",
            vortex=artifact.vortex, hls=artifact.hls,
            error_bounds=artifact.error_bounds)
        path = stale.save(tmp_path / "stale.json")
        with pytest.raises(CalibrationError) as exc:
            load_calibration(path)
        assert "different code" in str(exc.value)
        # the escape hatch still reads it
        loaded = load_calibration(path, strict_fingerprint=False)
        assert loaded.fingerprint == "not-the-running-code"

    def test_missing_and_malformed(self, tmp_path):
        with pytest.raises(CalibrationError) as exc:
            load_calibration(tmp_path / "nope.json")
        assert "calibrate" in str(exc.value)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(CalibrationError):
            load_calibration(bad)
        wrong_schema = tmp_path / "schema.json"
        wrong_schema.write_text(json.dumps({"schema": 99}))
        with pytest.raises(CalibrationError) as exc:
            load_calibration(wrong_schema)
        assert "schema" in str(exc.value)

    def test_bound_lookup(self):
        art = CalibrationArtifact(
            fingerprint=code_fingerprint(),
            vortex=VortexModelParams(), hls=HLSModelParams(),
            error_bounds={"vortex": {
                "vecadd": {"max_rel_err": 0.1, "mean_rel_err": 0.05,
                           "points": 6},
                "transpose": {"max_rel_err": 0.3, "mean_rel_err": 0.2,
                              "points": 6},
            }})
        assert art.bound("vortex", "vecadd") == pytest.approx(0.1)
        # unknown benchmark falls back to the worst stated bound
        assert art.bound("vortex", "sgemm") == pytest.approx(0.3)
        assert art.bound("vortex") == pytest.approx(0.3)
        with pytest.raises(CalibrationError):
            art.bound("hls")
