"""Differential tests: every kernel runs on both the reference
interpreter and the Vortex cycle simulator; results must match bit-for-
bit (int) or to float32 tolerance. This exercises codegen (divergence
lowering, register allocation, spilling), the assembler and the whole
simulator."""

import numpy as np
import pytest

from repro.errors import CompilationError
from repro.ocl import (
    FLOAT32,
    GLOBAL_FLOAT32,
    GLOBAL_INT32,
    INT32,
    Context,
    KernelBuilder,
    NDRange,
    ReferenceBackend,
    interpret,
)
from repro.vortex import VortexBackend, VortexConfig, compile_kernel

SMALL = VortexConfig(cores=2, warps=4, threads=4)


def run_both(kernel, arrays, scalars=(), global_size=16, local_size=4,
             config=SMALL):
    """Run on interpreter and Vortex; returns (ref_arrays, vx_arrays,
    vortex LaunchStats)."""
    ref = [a.copy() for a in arrays]
    vx = [a.copy() for a in arrays]
    ndr = NDRange.create(global_size, local_size)
    interpret(kernel, list(ref) + list(scalars), ndr)

    ctx = Context(VortexBackend(config))
    prog = ctx.program([kernel])
    bufs = [ctx.buffer(a) for a in vx]
    stats = prog.launch(kernel.name, list(bufs) + list(scalars),
                        global_size, local_size)
    out = [b.read() for b in bufs]
    return ref, out, stats


def assert_match(ref, vx):
    for r, v in zip(ref, vx):
        if r.dtype == np.int32:
            np.testing.assert_array_equal(v, r)
        else:
            np.testing.assert_allclose(v, r, rtol=1e-5, atol=1e-6)


class TestStraightLine:
    def test_int_arithmetic(self):
        b = KernelBuilder("intops")
        x = b.param("x", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        v = b.load(x, gid)
        r = b.add(b.mul(v, 3), b.sub(v, 7))
        r = b.xor(b.or_(r, 12), b.and_(v, 5))
        r = b.add(r, b.shl(v, 2))
        r = b.add(r, b.ashr(v, 1))
        r = b.add(r, b.lshr(v, 3))
        r = b.add(r, b.rem(b.abs(v), 7))
        r = b.add(r, b.min(v, 10))
        r = b.add(r, b.max(v, -3))
        b.store(out, gid, r)
        kernel = b.finish()
        rng = np.random.default_rng(1)
        x_arr = rng.integers(-1000, 1000, 16).astype(np.int32)
        ref, vx, _ = run_both(kernel, [x_arr, np.zeros(16, dtype=np.int32)])
        assert_match(ref, vx)

    def test_int_division(self):
        b = KernelBuilder("divs")
        x = b.param("x", GLOBAL_INT32)
        y = b.param("y", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        b.store(out, gid, b.div(b.load(x, gid), b.load(y, gid)))
        kernel = b.finish()
        x_arr = np.array([7, -7, 100, -100, 5, 2**31 - 1, 0, 13] * 2,
                         dtype=np.int32)
        y_arr = np.array([2, 2, -3, -3, 5, 1, 9, -13] * 2, dtype=np.int32)
        ref, vx, _ = run_both(kernel, [x_arr, y_arr,
                                       np.zeros(16, dtype=np.int32)])
        assert_match(ref, vx)

    def test_float_math(self):
        b = KernelBuilder("fmath")
        x = b.param("x", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        gid = b.global_id(0)
        v = b.load(x, gid)
        r = b.add(b.mul(v, 1.5), 2.25)
        r = b.add(r, b.sqrt(b.abs(v)))
        r = b.add(r, b.exp(b.neg(b.abs(v))))
        r = b.add(r, b.sin(v))
        r = b.add(r, b.cos(v))
        r = b.add(r, b.floor(v))
        r = b.add(r, b.min(v, b.const(0.5)))
        r = b.add(r, b.max(v, b.const(-0.5)))
        b.store(out, gid, r)
        kernel = b.finish()
        rng = np.random.default_rng(2)
        x_arr = (rng.random(16, dtype=np.float32) * 4 - 2).astype(np.float32)
        ref, vx, _ = run_both(kernel, [x_arr, np.zeros(16, dtype=np.float32)])
        assert_match(ref, vx)

    def test_conversions_and_select(self):
        b = KernelBuilder("convsel")
        x = b.param("x", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_INT32)
        fout = b.param("fout", GLOBAL_FLOAT32)
        gid = b.global_id(0)
        v = b.load(x, gid)
        i = b.ftoi(v)
        cond = b.gt(v, 0.0)
        b.store(out, gid, b.select(cond, i, b.neg(i)))
        b.store(fout, gid, b.select(cond, v, b.const(-1.0)))
        kernel = b.finish()
        x_arr = np.array([1.7, -2.3, 0.0, 5.9, -0.4, 3.2, -8.8, 2.5] * 2,
                         dtype=np.float32)
        ref, vx, _ = run_both(
            kernel,
            [x_arr, np.zeros(16, dtype=np.int32),
             np.zeros(16, dtype=np.float32)],
        )
        assert_match(ref, vx)


class TestDivergence:
    def test_divergent_if(self):
        b = KernelBuilder("divif")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        with b.if_(b.eq(b.rem(gid, 2), 0)):
            b.store(out, gid, b.mul(gid, 10))
        kernel = b.finish()
        ref, vx, stats = run_both(kernel, [np.full(16, -1, dtype=np.int32)])
        assert_match(ref, vx)

    def test_divergent_if_else(self):
        b = KernelBuilder("divifelse")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        v = b.var("v", INT32)
        with b.if_else(b.lt(b.rem(gid, 4), 2)) as (t, e):
            with t:
                v.set(b.add(gid, 100))
            with e:
                v.set(b.sub(gid, 100))
        b.store(out, gid, v.get())
        kernel = b.finish()
        ref, vx, _ = run_both(kernel, [np.zeros(16, dtype=np.int32)])
        assert_match(ref, vx)

    def test_nested_divergent_ifs(self):
        b = KernelBuilder("nestdiv")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        v = b.var("v", INT32, init=0)
        with b.if_(b.lt(b.rem(gid, 4), 3)):
            v.set(1)
            with b.if_else(b.eq(b.rem(gid, 2), 0)) as (t, e):
                with t:
                    v.set(b.add(v.get(), 10))
                with e:
                    v.set(b.add(v.get(), 20))
        b.store(out, gid, v.get())
        kernel = b.finish()
        ref, vx, _ = run_both(kernel, [np.zeros(16, dtype=np.int32)])
        assert_match(ref, vx)

    def test_divergent_trip_count_loop(self):
        # Each thread loops gid times: classic PRED lowering.
        b = KernelBuilder("divloop")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        acc = b.var("acc", INT32, init=0)
        with b.for_range(0, gid) as i:
            acc.set(b.add(acc.get(), i))
        b.store(out, gid, acc.get())
        kernel = b.finish()
        ref, vx, _ = run_both(kernel, [np.zeros(16, dtype=np.int32)])
        assert_match(ref, vx)

    def test_divergent_while(self):
        # Collatz step counts diverge per lane.
        b = KernelBuilder("collatz")
        x = b.param("x", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        n = b.var("n", INT32, init=b.load(x, gid))
        steps = b.var("steps", INT32, init=0)
        with b.while_(lambda: b.gt(n.get(), 1)):
            with b.if_else(b.eq(b.rem(n.get(), 2), 0)) as (even, odd):
                with even:
                    n.set(b.div(n.get(), 2))
                with odd:
                    n.set(b.add(b.mul(n.get(), 3), 1))
            steps.set(b.add(steps.get(), 1))
        b.store(out, gid, steps.get())
        kernel = b.finish()
        x_arr = np.array([1, 2, 3, 4, 5, 6, 7, 27, 9, 10, 11, 12, 13, 14,
                          15, 16], dtype=np.int32)
        ref, vx, _ = run_both(kernel, [x_arr, np.zeros(16, dtype=np.int32)])
        assert_match(ref, vx)

    def test_divergent_loop_inside_divergent_if(self):
        b = KernelBuilder("divdiv")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        acc = b.var("acc", INT32, init=0)
        with b.if_(b.gt(b.rem(gid, 4), 0)):
            with b.for_range(0, b.rem(gid, 4)) as i:
                acc.set(b.add(acc.get(), b.add(i, 1)))
        b.store(out, gid, acc.get())
        kernel = b.finish()
        ref, vx, _ = run_both(kernel, [np.zeros(16, dtype=np.int32)])
        assert_match(ref, vx)

    def test_uniform_loop_with_divergent_body(self):
        b = KernelBuilder("unidiv")
        out = b.param("out", GLOBAL_INT32)
        n = b.param("n", INT32)
        gid = b.global_id(0)
        acc = b.var("acc", INT32, init=0)
        with b.for_range(0, n) as i:
            with b.if_(b.eq(b.rem(b.add(gid, i), 2), 0)):
                acc.set(b.add(acc.get(), 1))
        b.store(out, gid, acc.get())
        kernel = b.finish()
        ref, vx, _ = run_both(kernel, [np.zeros(16, dtype=np.int32)],
                              scalars=(7,))
        assert_match(ref, vx)

    def test_divergent_continue(self):
        b = KernelBuilder("divcont")
        out = b.param("out", GLOBAL_INT32)
        n = b.param("n", INT32)
        gid = b.global_id(0)
        acc = b.var("acc", INT32, init=0)
        with b.for_range(0, n) as i:
            with b.if_(b.eq(b.rem(b.add(i, gid), 3), 0)):
                b.continue_()
            acc.set(b.add(acc.get(), i))
        b.store(out, gid, acc.get())
        kernel = b.finish()
        ref, vx, _ = run_both(kernel, [np.zeros(16, dtype=np.int32)],
                              scalars=(9,))
        assert_match(ref, vx)

    def test_divergent_break_rejected(self):
        b = KernelBuilder("divbreak")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        with b.for_range(0, 10) as i:
            with b.if_(b.eq(i, gid)):
                b.break_()
        b.store(out, gid, gid)
        kernel = b.finish()
        with pytest.raises(CompilationError, match="divergent"):
            compile_kernel(kernel, NDRange.create(16, 4))


class TestBarriersAndLocal:
    def test_tile_reverse_multi_warp_group(self):
        # Group of 16 items on 4-thread warps: 4 warps cooperate via BAR.
        b = KernelBuilder("rev16")
        data = b.param("data", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        tile = b.local_array("tile", INT32, 16)
        lid = b.local_id(0)
        gid = b.global_id(0)
        b.store(tile, lid, b.load(data, gid))
        b.barrier()
        b.store(out, gid, b.load(tile, b.sub(15, lid)))
        kernel = b.finish()
        data_arr = np.arange(32, dtype=np.int32)
        ref, vx, _ = run_both(
            kernel, [data_arr, np.zeros(32, dtype=np.int32)],
            global_size=32, local_size=16,
        )
        assert_match(ref, vx)

    def test_local_reduction(self):
        b = KernelBuilder("reduce")
        data = b.param("data", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        scratch = b.local_array("scratch", FLOAT32, 8)
        lid = b.local_id(0)
        gid = b.global_id(0)
        grp = b.group_id(0)
        b.store(scratch, lid, b.load(data, gid))
        b.barrier()
        stride = b.var("stride", INT32, init=4)
        with b.while_(lambda: b.gt(stride.get(), 0)):
            with b.if_(b.lt(lid, stride.get())):
                a = b.load(scratch, lid)
                c = b.load(scratch, b.add(lid, stride.get()))
                b.store(scratch, lid, b.add(a, c))
            b.barrier()
            stride.set(b.div(stride.get(), 2))
        with b.if_(b.eq(lid, 0)):
            b.store(out, grp, b.load(scratch, 0))
        kernel = b.finish()
        rng = np.random.default_rng(3)
        data_arr = rng.random(32, dtype=np.float32)
        ref, vx, _ = run_both(
            kernel, [data_arr, np.zeros(4, dtype=np.float32)],
            global_size=32, local_size=8,
        )
        assert_match(ref, vx)

    def test_private_array(self):
        b = KernelBuilder("privk")
        out = b.param("out", GLOBAL_INT32)
        scratch = b.private_array("scratch", INT32, 4)
        gid = b.global_id(0)
        with b.for_range(0, 4) as i:
            b.store(scratch, i, b.mul(b.add(gid, 1), i))
        acc = b.var("acc", INT32, init=0)
        with b.for_range(0, 4) as i:
            acc.set(b.add(acc.get(), b.load(scratch, i)))
        b.store(out, gid, acc.get())
        kernel = b.finish()
        ref, vx, _ = run_both(kernel, [np.zeros(16, dtype=np.int32)])
        assert_match(ref, vx)


class TestAtomicsAndPrintf:
    def test_atomic_histogram(self):
        b = KernelBuilder("hist")
        data = b.param("data", GLOBAL_INT32)
        bins = b.param("bins", GLOBAL_INT32)
        gid = b.global_id(0)
        b.atomic_add(bins, b.load(data, gid), 1)
        kernel = b.finish()
        rng = np.random.default_rng(4)
        data_arr = rng.integers(0, 8, 64).astype(np.int32)
        ref, vx, _ = run_both(
            kernel, [data_arr, np.zeros(8, dtype=np.int32)],
            global_size=64, local_size=8,
        )
        assert_match(ref, vx)

    def test_atomic_min_max_xchg(self):
        b = KernelBuilder("amm")
        data = b.param("data", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        v = b.load(data, gid)
        b.atomic_min(out, 0, v)
        b.atomic_max(out, 1, v)
        kernel = b.finish()
        rng = np.random.default_rng(5)
        data_arr = rng.integers(-500, 500, 32).astype(np.int32)
        init = np.array([2**31 - 1, -(2**31)] + [0] * 6, dtype=np.int32)
        ref, vx, _ = run_both(kernel, [data_arr, init],
                              global_size=32, local_size=8)
        assert_match(ref, vx)

    def test_atomic_cas_spinfree_counter(self):
        b = KernelBuilder("casinc")
        cell = b.param("cell", GLOBAL_INT32)
        outs = b.param("outs", GLOBAL_INT32)
        gid = b.global_id(0)
        old = b.atomic_cas(cell, 0, gid, b.add(gid, 1000))
        b.store(outs, gid, old)
        kernel = b.finish()
        # Only the lane whose gid matches the initial cell value can swap;
        # the values other lanes observe depend on scheduling, so assert
        # only the schedule-independent facts.
        ndr = NDRange.create(16, 4)
        cell_vx = np.array([3], dtype=np.int32)
        outs_vx = np.zeros(16, dtype=np.int32)
        ctx = Context(VortexBackend(SMALL))
        prog = ctx.program([kernel])
        bufs = [ctx.buffer(cell_vx), ctx.buffer(outs_vx)]
        prog.launch("casinc", bufs, 16, 4)
        cell_out = bufs[0].read()
        outs_out = bufs[1].read()
        assert cell_out[0] == 1003  # lane 3 swapped
        assert outs_out[3] == 3  # and observed the original value
        assert set(np.unique(outs_out)) <= {3, 1003}

    def test_printf_output_matches(self):
        b = KernelBuilder("pf")
        gid = b.global_id(0)
        b.printf("item %d = %.1f", gid, b.mul(b.itof(gid), 0.5))
        kernel = b.finish()
        ndr = NDRange.create(4, 4)
        ref_result = interpret(kernel, [], ndr)
        ctx = Context(VortexBackend(SMALL))
        prog = ctx.program([kernel])
        stats = prog.launch("pf", [], 4, 4)
        assert sorted(stats.printf_output) == sorted(ref_result.printf_output)
        assert "item 0 = 0.0" in stats.printf_output


class TestRegisterPressure:
    def test_spilling_many_live_values(self):
        # Build > 24 simultaneously-live int values to force spills.
        b = KernelBuilder("spilly")
        x = b.param("x", GLOBAL_INT32)
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        base = b.load(x, gid)
        vals = [b.mul(base, i + 1) for i in range(30)]
        acc = b.var("acc", INT32, init=0)
        for v in vals:
            acc.set(b.add(acc.get(), v))
        b.store(out, gid, acc.get())
        kernel = b.finish()
        rng = np.random.default_rng(6)
        x_arr = rng.integers(-100, 100, 16).astype(np.int32)
        ref, vx, _ = run_both(kernel, [x_arr, np.zeros(16, dtype=np.int32)])
        assert_match(ref, vx)

    def test_spilling_many_live_floats(self):
        b = KernelBuilder("fspilly")
        x = b.param("x", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        gid = b.global_id(0)
        base = b.load(x, gid)
        vals = [b.mul(base, float(i) * 0.25 + 1.0) for i in range(34)]
        acc = b.var("acc", FLOAT32, init=0.0)
        for v in vals:
            acc.set(b.add(acc.get(), v))
        b.store(out, gid, acc.get())
        kernel = b.finish()
        rng = np.random.default_rng(7)
        x_arr = rng.random(16, dtype=np.float32)
        ref, vx, _ = run_both(kernel, [x_arr, np.zeros(16, dtype=np.float32)])
        assert_match(ref, vx)


class TestGeometry:
    def test_2d_launch(self):
        b = KernelBuilder("transpose8")
        src = b.param("src", GLOBAL_FLOAT32)
        dst = b.param("dst", GLOBAL_FLOAT32)
        n = b.param("n", INT32)
        x = b.global_id(0)
        y = b.global_id(1)
        b.store(dst, b.add(b.mul(x, n), y), b.load(src, b.add(b.mul(y, n), x)))
        kernel = b.finish()
        n_val = 8
        rng = np.random.default_rng(8)
        src_arr = rng.random(n_val * n_val, dtype=np.float32)
        ref = [src_arr.copy(), np.zeros(n_val * n_val, dtype=np.float32)]
        vx = [src_arr.copy(), np.zeros(n_val * n_val, dtype=np.float32)]
        ndr = NDRange.create((n_val, n_val), (4, 2))
        interpret(kernel, ref + [n_val], ndr)
        ctx = Context(VortexBackend(SMALL))
        prog = ctx.program([kernel])
        bufs = [ctx.buffer(a) for a in vx]
        prog.launch("transpose8", bufs + [n_val], (n_val, n_val), (4, 2))
        assert_match(ref, [b.read() for b in bufs])

    def test_partial_last_warp(self):
        # local size 6 on 4-thread warps: second warp half-masked.
        b = KernelBuilder("partial")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        b.store(out, gid, b.add(gid, 1))
        kernel = b.finish()
        ref, vx, _ = run_both(kernel, [np.zeros(12, dtype=np.int32)],
                              global_size=12, local_size=6)
        assert_match(ref, vx)

    def test_large_group_ok_without_barrier(self):
        # Barrier-free kernels use the wave loop: any group size works,
        # even beyond the warp capacity of the configuration.
        b = KernelBuilder("big")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        b.store(out, gid, b.mul(gid, 3))
        kernel = b.finish()
        ref, vx, _ = run_both(kernel, [np.zeros(32, dtype=np.int32)],
                              global_size=32, local_size=16,
                              config=VortexConfig(cores=1, warps=2,
                                                  threads=4))
        assert_match(ref, vx)

    def test_barrier_group_too_large_raises(self):
        # Barrier kernels need every work item resident: the group must
        # fit in W*T hardware threads.
        b = KernelBuilder("bigbar")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        b.barrier()
        b.store(out, gid, 1)
        kernel = b.finish()
        ctx = Context(VortexBackend(VortexConfig(cores=1, warps=2, threads=4)))
        prog = ctx.program([kernel])
        buf = ctx.buffer(np.zeros(32, dtype=np.int32))
        from repro.errors import RuntimeLaunchError
        with pytest.raises(RuntimeLaunchError, match="warps"):
            prog.launch("bigbar", [buf], 32, 16)

    def test_partial_wave_masking(self):
        # local size 6 with T=4: waves of 4 then 2 lanes.
        b = KernelBuilder("partialwave")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        b.store(out, gid, b.add(gid, 7))
        kernel = b.finish()
        ref, vx, _ = run_both(kernel, [np.zeros(18, dtype=np.int32)],
                              global_size=18, local_size=6,
                              config=VortexConfig(cores=1, warps=2,
                                                  threads=4))
        assert_match(ref, vx)

    def test_many_groups_queue_on_few_warps(self):
        b = KernelBuilder("queued")
        out = b.param("out", GLOBAL_INT32)
        gid = b.global_id(0)
        b.store(out, gid, b.mul(gid, 2))
        kernel = b.finish()
        ref, vx, stats = run_both(
            kernel, [np.zeros(64, dtype=np.int32)],
            global_size=64, local_size=4,
            config=VortexConfig(cores=1, warps=2, threads=4),
        )
        assert_match(ref, vx)
        assert stats.extra["groups_dispatched"] == 16
