"""Tests for the HLS flow: LSU classification, area model, synthesis
failure modes, and the pipeline performance model."""

import numpy as np
import pytest

from repro.errors import SynthesisError
from repro.hls import (
    HLSBackend,
    LSUKind,
    STRATIX10_MX2100,
    STRATIX10_SX2800,
    aoc,
    classify_kernel,
    estimate,
)
from repro.ocl import (
    CONSTANT_FLOAT32,
    FLOAT32,
    GLOBAL_FLOAT32,
    GLOBAL_INT32,
    INT32,
    Context,
    KernelBuilder,
    Opcode,
)


def vecadd_kernel():
    b = KernelBuilder("vecadd")
    a = b.param("a", GLOBAL_FLOAT32)
    c = b.param("b", GLOBAL_FLOAT32)
    out = b.param("out", GLOBAL_FLOAT32)
    gid = b.global_id(0)
    b.store(out, gid, b.add(b.load(a, gid), b.load(c, gid)))
    return b.finish()


class TestLSUClassification:
    def test_gid_unit_stride_is_streaming(self):
        kernel = vecadd_kernel()
        sites = classify_kernel(kernel)
        assert [s.kind for s in sites] == [
            LSUKind.STREAMING, LSUKind.STREAMING, LSUKind.STREAMING,
        ]
        assert [s.is_store for s in sites] == [False, False, True]

    def test_row_major_2d_store_is_streaming(self):
        # out[gid1 * W + gid0]: contiguous along dimension 0 -> streams.
        b = KernelBuilder("k")
        out = b.param("out", GLOBAL_FLOAT32)
        w = b.param("w", INT32)
        idx = b.add(b.mul(b.global_id(1), w), b.global_id(0))
        b.store(out, idx, b.const(1.0))
        sites = classify_kernel(b.finish())
        assert sites[0].kind is LSUKind.STREAMING

    def test_transposed_store_is_strided(self):
        # out[gid0 * H + gid1]: non-unit stride in dim 0 -> strided.
        b = KernelBuilder("k")
        out = b.param("out", GLOBAL_FLOAT32)
        h = b.param("h", INT32)
        idx = b.add(b.mul(b.global_id(0), h), b.global_id(1))
        b.store(out, idx, b.const(1.0))
        sites = classify_kernel(b.finish())
        assert sites[0].kind is LSUKind.STRIDED

    def test_lid_based_access_is_strided(self):
        # delta[lid.x + 1] (the backprop pattern): groups collide -> strided.
        b = KernelBuilder("k")
        delta = b.param("delta", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        v = b.load(delta, b.add(b.local_id(0), 1))
        b.store(out, b.global_id(0), v)
        sites = classify_kernel(b.finish())
        assert sites[0].kind is LSUKind.STRIDED

    def test_indirect_access(self):
        # data[index[gid]]: data-dependent index -> indirect.
        b = KernelBuilder("k")
        index = b.param("index", GLOBAL_INT32)
        data = b.param("data", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        gid = b.global_id(0)
        j = b.load(index, gid)
        b.store(out, gid, b.load(data, j))
        sites = classify_kernel(b.finish())
        kinds = {s.instr.args[0].name: s.kind for s in sites if not s.is_store}
        assert kinds["index"] is LSUKind.STREAMING
        assert kinds["data"] is LSUKind.INDIRECT

    def test_uniform_access(self):
        b = KernelBuilder("k")
        table = b.param("table", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        b.store(out, b.global_id(0), b.load(table, 3))
        sites = classify_kernel(b.finish())
        load_site = [s for s in sites if not s.is_store][0]
        assert load_site.kind is LSUKind.UNIFORM

    def test_unit_stride_loop_access_streams(self):
        # Single-work-item style: a[i] inside for i.
        b = KernelBuilder("k")
        a = b.param("a", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        acc = b.var("acc", FLOAT32, init=0.0)
        with b.for_range(0, 64) as i:
            acc.set(b.add(acc.get(), b.load(a, i)))
        b.store(out, 0, acc.get())
        sites = classify_kernel(b.finish())
        load_site = [s for s in sites if not s.is_store][0]
        assert load_site.kind is LSUKind.STREAMING

    def test_strided_loop_access(self):
        # a[i * 64] inside for i: non-unit stride.
        b = KernelBuilder("k")
        a = b.param("a", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        acc = b.var("acc", FLOAT32, init=0.0)
        with b.for_range(0, 16) as i:
            acc.set(b.add(acc.get(), b.load(a, b.mul(i, 64))))
        b.store(out, 0, acc.get())
        sites = classify_kernel(b.finish())
        load_site = [s for s in sites if not s.is_store][0]
        assert load_site.kind is LSUKind.STRIDED

    def test_pipelined_directive_wins(self):
        b = KernelBuilder("k")
        a = b.param("a", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        idx = b.add(b.local_id(0), 1)
        b.store(out, b.global_id(0), b.load(a, idx, pipelined=True))
        sites = classify_kernel(b.finish())
        load_site = [s for s in sites if not s.is_store][0]
        assert load_site.kind is LSUKind.PIPELINED

    def test_local_array_port(self):
        b = KernelBuilder("k")
        tile = b.local_array("tile", FLOAT32, 64)
        b.store(tile, b.local_id(0), b.const(0.0))
        sites = classify_kernel(b.finish())
        assert sites[0].kind is LSUKind.LOCAL_PORT

    def test_constant_space_cached(self):
        b = KernelBuilder("k")
        coeffs = b.param("coeffs", CONSTANT_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        gid = b.global_id(0)
        b.store(out, gid, b.load(coeffs, gid))
        sites = classify_kernel(b.finish())
        load_site = [s for s in sites if not s.is_store][0]
        assert load_site.kind is LSUKind.CONSTANT_CACHE

    def test_atomic_site(self):
        b = KernelBuilder("k")
        bins = b.param("bins", GLOBAL_INT32)
        b.atomic_add(bins, b.global_id(0), 1)
        sites = classify_kernel(b.finish())
        assert sites[0].kind is LSUKind.ATOMIC


class TestAreaModel:
    def test_vecadd_matches_paper_table3(self):
        # Table III: Vecadd = 1,065 BRAMs. Our BRAM constants are
        # calibrated to hit this row exactly.
        report = estimate(vecadd_kernel())
        assert report.brams == 1065
        assert report.dsps == 1  # the single fadd

    def test_strided_loads_dominate(self):
        b = KernelBuilder("k")
        a = b.param("a", GLOBAL_FLOAT32)
        out = b.param("out", GLOBAL_FLOAT32)
        h = b.param("h", INT32)
        idx = b.add(b.mul(b.global_id(0), h), b.global_id(1))
        b.store(out, b.global_id(0), b.load(a, idx))
        report = estimate(b.finish())
        lsu_bram = report.breakdown["lsu_strided"][2]
        assert lsu_bram == 1005
        assert lsu_bram > report.breakdown["kernel_base"][2]

    def test_pipelined_load_is_cheaper(self):
        def make(pipelined):
            b = KernelBuilder("k")
            a = b.param("a", GLOBAL_FLOAT32)
            out = b.param("out", GLOBAL_FLOAT32)
            idx = b.add(b.local_id(0), 1)
            b.store(out, b.global_id(0), b.load(a, idx, pipelined=pipelined))
            return estimate(b.finish())

        plain = make(False)
        piped = make(True)
        assert piped.brams < plain.brams
        assert piped.aluts < plain.aluts
        # The paper's O2 observation: pipelined loads *add* a DSP.
        assert piped.dsps >= plain.dsps

    def test_local_array_storage_scales(self):
        def make(size):
            b = KernelBuilder("k")
            tile = b.local_array("tile", FLOAT32, size)
            b.store(tile, b.local_id(0), b.const(0.0))
            return estimate(b.finish())

        small = make(64)
        big = make(8192)
        assert big.brams > small.brams

    def test_program_area_sums_kernels(self):
        k1 = vecadd_kernel()
        from repro.hls import estimate_program

        single = estimate(k1)
        double = estimate_program([k1, k1])
        assert double.brams == 2 * single.brams


class TestSynthesisFailures:
    def test_atomics_fail_on_hbm_device(self):
        b = KernelBuilder("hist")
        bins = b.param("bins", GLOBAL_INT32)
        b.atomic_add(bins, b.global_id(0), 1)
        kernel = b.finish()
        with pytest.raises(SynthesisError) as exc:
            aoc(kernel, device=STRATIX10_MX2100)
        assert exc.value.reason == "atomics"

    def test_atomics_pass_on_ddr4_device(self):
        b = KernelBuilder("hist")
        bins = b.param("bins", GLOBAL_INT32)
        b.atomic_add(bins, b.global_id(0), 1)
        kernel = b.finish()
        report = aoc(kernel, device=STRATIX10_SX2800)
        assert report.brams > 0

    def test_bram_exhaustion_fails(self):
        # Eight strided RMW pairs exceed 6,847 M20Ks.
        b = KernelBuilder("fat")
        h = b.param("h", INT32)
        ptrs = [b.param(f"p{i}", GLOBAL_FLOAT32) for i in range(8)]
        idx = b.add(b.mul(b.global_id(0), h), b.global_id(1))
        for p in ptrs:
            b.store(p, idx, b.add(b.load(p, idx), b.const(1.0)))
        kernel = b.finish()
        with pytest.raises(SynthesisError) as exc:
            aoc(kernel, device=STRATIX10_MX2100)
        assert exc.value.reason == "bram"
        assert "BRAM" in str(exc.value)

    def test_capacity_check_can_be_disabled(self):
        b = KernelBuilder("fat")
        h = b.param("h", INT32)
        ptrs = [b.param(f"p{i}", GLOBAL_FLOAT32) for i in range(8)]
        idx = b.add(b.mul(b.global_id(0), h), b.global_id(1))
        for p in ptrs:
            b.store(p, idx, b.add(b.load(p, idx), b.const(1.0)))
        kernel = b.finish()
        report = aoc(kernel, device=STRATIX10_MX2100, enforce_capacity=False)
        assert report.brams > STRATIX10_MX2100.brams

    def test_bitstream_accumulates_across_kernels(self):
        backend = HLSBackend(device=STRATIX10_MX2100)
        # Each kernel alone fits; together they exceed BRAM capacity.
        def strided_kernel(name):
            b = KernelBuilder(name)
            h = b.param("h", INT32)
            ptrs = [b.param(f"p{i}", GLOBAL_FLOAT32) for i in range(3)]
            idx = b.add(b.mul(b.global_id(0), h), b.global_id(1))
            for p in ptrs:
                b.store(p, idx, b.add(b.load(p, idx), b.const(1.0)))
            return b.finish()

        backend.build(strided_kernel("k1"))
        with pytest.raises(SynthesisError):
            backend.build(strided_kernel("k2"))


class TestExecution:
    def test_hls_backend_runs_vecadd(self):
        ctx = Context(HLSBackend(device=STRATIX10_MX2100))
        prog = ctx.program([vecadd_kernel()])
        a = ctx.buffer(np.arange(64, dtype=np.float32))
        c = ctx.buffer(np.ones(64, dtype=np.float32))
        out = ctx.alloc(64)
        stats = prog.launch("vecadd", [a, c, out], global_size=64, local_size=16)
        np.testing.assert_allclose(out.read(), np.arange(64) + 1.0)
        assert stats.cycles is not None and stats.cycles > 64
        assert stats.backend == "intel_hls"

    def test_pipelined_load_slower_but_smaller(self):
        def run(pipelined):
            b = KernelBuilder("k")
            a = b.param("a", GLOBAL_FLOAT32)
            out = b.param("out", GLOBAL_FLOAT32)
            idx = b.add(b.local_id(0), 0)
            v = b.load(a, idx, pipelined=pipelined)
            b.store(out, b.global_id(0), v)
            kernel = b.finish()
            ctx = Context(HLSBackend())
            prog = ctx.program([kernel])
            a_buf = ctx.buffer(np.ones(256, dtype=np.float32))
            out_buf = ctx.alloc(256)
            return prog.launch("k", [a_buf, out_buf], 256, 16)

        plain = run(False)
        piped = run(True)
        assert piped.cycles > plain.cycles  # performance cost
        assert piped.extra["area"]["BRAMs"] < plain.extra["area"]["BRAMs"]
