"""Tests for the hardened experiment service.

Covers the wire protocol (typed errors for every malformed input), job
validation, the daemon's submit/status/results lifecycle, dedup and
idempotency, admission control under injected overload, graceful
drain, journal-driven resume — and the acceptance criterion: a daemon
killed with ``SIGKILL`` mid-campaign resumes and produces results
byte-identical to a serial run of the same points.
"""

import io
import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import JobNotFound, QueueFull, ServiceError
from repro.harness import FAULT_PLAN_ENV, FAULT_STATE_ENV
from repro.harness.result_cache import MISS
from repro.service import (
    ExperimentDaemon,
    Journal,
    ProtocolError,
    ServiceClient,
    job_key,
    validate_job,
)
from repro.service import protocol

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


# -- fixtures ----------------------------------------------------------------

@pytest.fixture
def daemon_factory(tmp_path):
    """Build started daemons that are always stopped at teardown."""
    daemons = []

    def make(state_dir=None, **kwargs):
        kwargs.setdefault("jobs", 1)
        daemon = ExperimentDaemon(state_dir or tmp_path / "state",
                                  **kwargs)
        daemon.start()
        daemons.append(daemon)
        return daemon

    yield make
    for daemon in daemons:
        daemon.request_stop()
        assert daemon.wait(30), "daemon failed to stop in teardown"


def _client(daemon, **kwargs):
    kwargs.setdefault("retries", 2)
    kwargs.setdefault("backoff", 0.01)
    return ServiceClient(daemon.state_dir, **kwargs)


def _probe(value=0, **extra):
    return {"kind": "probe", "value": value, **extra}


# -- protocol framing --------------------------------------------------------

class TestProtocol:
    def test_eof_is_none(self):
        assert protocol.read_message(io.BytesIO(b"")) is None

    def test_oversized_line_rejected(self):
        line = b"x" * (protocol.MAX_LINE_BYTES + 10)
        with pytest.raises(ProtocolError):
            protocol.read_message(io.BytesIO(line))

    def test_torn_line_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.read_message(io.BytesIO(b'{"op": "health"'))

    def test_non_json_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.read_message(io.BytesIO(b"not json at all\n"))

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.read_message(io.BytesIO(b"[1, 2, 3]\n"))

    def test_roundtrip(self):
        buf = io.BytesIO()
        protocol.write_message(buf, {"op": "health", "n": 3})
        buf.seek(0)
        assert protocol.read_message(buf) == {"op": "health", "n": 3}

    def test_exception_mapping(self):
        assert isinstance(
            protocol.exception_for_reply({"code": "queue-full",
                                          "error": "x",
                                          "retry_after": 0.5}),
            QueueFull)
        assert isinstance(
            protocol.exception_for_reply({"code": "job-not-found",
                                          "error": "x"}),
            JobNotFound)
        exc = protocol.exception_for_reply({"code": "internal",
                                            "error": "x"})
        assert type(exc) is ServiceError and exc.code == "internal"


class TestMalformedOverTcp:
    """A hostile byte stream gets a typed reply, never a dead daemon."""

    def _raw(self, daemon, payload: bytes) -> dict:
        with socket.create_connection(daemon.address, timeout=10) as s:
            s.sendall(payload)
            with s.makefile("rb") as stream:
                return json.loads(stream.readline())

    @pytest.mark.parametrize("payload", [
        b"garbage that is not json\n",
        b'"a bare string"\n',
        b'{"op": "no-such-op"}\n',
        b'{"no_op_at_all": 1}\n',
        b'{"op": "submit", "job": {"kind": "nope"}}\n',
        b'{"op": "results", "job_id": 42}\n',
    ])
    def test_bad_bytes_get_bad_request(self, daemon_factory, payload):
        daemon = daemon_factory()
        reply = self._raw(daemon, payload)
        assert reply["ok"] is False
        assert reply["code"] in ("bad-request",)
        # and the daemon still serves the next (well-formed) client:
        assert _client(daemon).health()["ok"] is True

    def test_huge_line_rejected_not_buffered(self, daemon_factory):
        daemon = daemon_factory()
        blob = b'{"op": "submit", "pad": "' + b"x" * (2 << 20) + b'"}\n'
        reply = self._raw(daemon, blob)
        assert reply["ok"] is False and reply["code"] == "bad-request"
        assert _client(daemon).health()["ok"] is True


# -- job validation ----------------------------------------------------------

class TestValidateJob:
    def test_unknown_kind(self):
        with pytest.raises(ServiceError) as exc:
            validate_job({"kind": "mystery"})
        assert exc.value.code == "bad-request"

    def test_not_an_object(self):
        with pytest.raises(ServiceError):
            validate_job(["kind", "probe"])

    def test_unknown_field(self):
        with pytest.raises(ServiceError) as exc:
            validate_job(_probe(0, surprise=1))
        assert "surprise" in str(exc.value)

    def test_fig7_requires_benchmark(self):
        with pytest.raises(ServiceError):
            validate_job({"kind": "fig7-cell", "benchmark": "quicksort",
                          "warps": 4, "threads": 4})

    def test_fig7_bounds(self):
        with pytest.raises(ServiceError):
            validate_job({"kind": "fig7-cell", "benchmark": "vecadd",
                          "warps": 80000, "threads": 4})
        with pytest.raises(ServiceError):
            validate_job({"kind": "fig7-cell", "benchmark": "vecadd",
                          "warps": 4, "threads": 4, "n": 1})

    def test_fig7_type_checks(self):
        with pytest.raises(ServiceError):
            validate_job({"kind": "fig7-cell", "benchmark": "vecadd",
                          "warps": "four", "threads": 4})
        with pytest.raises(ServiceError):
            validate_job({"kind": "fig7-cell", "benchmark": "vecadd",
                          "warps": True, "threads": 4})

    def test_fig7_defaults(self):
        spec = validate_job({"kind": "fig7-cell", "benchmark": "vecadd",
                             "warps": 2, "threads": 8})
        assert spec["cores"] == 4 and spec["n"] == 4096

    def test_probe_bounds(self):
        with pytest.raises(ServiceError):
            validate_job(_probe(sleep_s=-1))
        with pytest.raises(ServiceError):
            validate_job(_probe(sleep_s=10_000))
        with pytest.raises(ServiceError):
            validate_job(_probe(boom="yes"))
        with pytest.raises(ServiceError):
            validate_job(_probe(nonce=7))
        with pytest.raises(ServiceError):
            validate_job(_probe(value=[1, 2]))

    def test_fig7_key_matches_sweep_cache_key(self, tmp_path):
        """The service keys fig7 cells exactly as run_sweep does, so
        results dedupe across the service and the batch CLI."""
        from repro.harness import ResultCache
        from repro.harness.sweep import SWEEP_SEED
        from repro.vortex import VortexConfig

        cache = ResultCache(tmp_path / "cache")
        spec = validate_job({"kind": "fig7-cell",
                             "benchmark": "transpose",
                             "warps": 2, "threads": 8, "cores": 2,
                             "n": 512})
        expected = cache.key(
            kind="fig7-cell", benchmark="transpose",
            config=VortexConfig().with_geometry(cores=2, warps=2,
                                                threads=8),
            n=512, seed=SWEEP_SEED)
        assert job_key(cache, spec) == expected


# -- daemon lifecycle --------------------------------------------------------

class TestRoundtrip:
    def test_submit_status_results(self, daemon_factory):
        daemon = daemon_factory()
        client = _client(daemon)
        reply = client.submit(_probe(41))
        assert reply["ok"] and reply["coalesced"] is False
        job_id = reply["job_id"]
        assert client.status(job_id)["state"] in (
            "queued", "running", "done")
        result = client.wait(job_id, timeout=30)
        assert result["state"] == "done"
        assert result["value"] == {"value": 41}

    def test_failure_payload(self, daemon_factory):
        daemon = daemon_factory()
        client = _client(daemon)
        job_id = client.submit(_probe(boom=True))["job_id"]
        result = client.wait(job_id, timeout=30)
        assert result["state"] == "failed"
        assert result["failure"]["exc_type"] == "RuntimeError"
        assert "boom" in result["failure"]["message"]

    def test_failed_spec_is_resubmittable(self, daemon_factory):
        """A failure must not poison the dedup index: resubmitting the
        same spec starts a fresh job instead of replaying the corpse."""
        daemon = daemon_factory()
        client = _client(daemon)
        first = client.submit(_probe(boom=True))["job_id"]
        client.wait(first, timeout=30)
        second = client.submit(_probe(boom=True))
        assert second["job_id"] != first
        assert second["coalesced"] is False

    def test_content_dedup_coalesces(self, daemon_factory):
        daemon = daemon_factory()
        client = _client(daemon)
        a = client.submit(_probe(7))
        b = client.submit(_probe(7))
        c = client.submit(_probe(8))
        assert b["job_id"] == a["job_id"] and b["coalesced"] is True
        assert c["job_id"] != a["job_id"]
        client.wait(a["job_id"], timeout=30)
        health = client.health()
        assert health["counters"].get("service.coalesced", 0) == 1

    def test_idempotent_replay(self, daemon_factory):
        daemon = daemon_factory()
        client = _client(daemon)
        a = client.submit(_probe(1), idempotency_key="idem-1")
        replay = client.submit(_probe(1), idempotency_key="idem-1")
        assert replay["job_id"] == a["job_id"]
        assert replay["coalesced"] is True

    def test_idempotency_key_reuse_is_an_error(self, daemon_factory):
        daemon = daemon_factory()
        client = _client(daemon)
        client.submit(_probe(1), idempotency_key="idem-x")
        with pytest.raises(ServiceError) as exc:
            client.submit(_probe(2), idempotency_key="idem-x")
        assert exc.value.code == "bad-request"

    def test_job_not_found(self, daemon_factory):
        daemon = daemon_factory()
        with pytest.raises(JobNotFound):
            _client(daemon).results("j000099-0123456789")

    def test_health_shape(self, daemon_factory):
        daemon = daemon_factory()
        health = _client(daemon).health()
        for field in ("pid", "queue_depth", "running", "limits",
                      "engine", "cache", "journal", "counters"):
            assert field in health
        assert health["pid"] == os.getpid()
        assert health["limits"]["max_queue"] == daemon.max_queue

    def test_status_without_id_is_health(self, daemon_factory):
        daemon = daemon_factory()
        reply = _client(daemon).status()
        assert "queue_depth" in reply

    def test_fig7_cell_runs_and_caches(self, daemon_factory):
        daemon = daemon_factory()
        client = _client(daemon)
        spec = {"kind": "fig7-cell", "benchmark": "vecadd",
                "warps": 2, "threads": 2, "cores": 2, "n": 512}
        job_id = client.submit(spec)["job_id"]
        result = client.wait(job_id, timeout=60)
        assert result["state"] == "done"
        assert result["value"]["cycles"] > 0
        key = job_key(daemon.cache, validate_job(spec))
        assert daemon.cache.get(key) is not MISS

    def test_done_eviction_keeps_serving(self, daemon_factory):
        daemon = daemon_factory(max_done=2)
        client = _client(daemon)
        ids = [client.submit(_probe(i))["job_id"] for i in range(4)]
        for job_id in ids:
            try:
                client.wait(job_id, timeout=30)
            except JobNotFound:
                pass  # evicted before we polled: also fine
        # the two oldest are evicted; resubmitting them is a cache hit
        hits_before = daemon.cache.hits
        replay = client.submit(_probe(0))
        assert client.wait(replay["job_id"],
                           timeout=30)["value"] == {"value": 0}
        assert daemon.cache.hits > hits_before


# -- admission control under overload ----------------------------------------

def _occupy_scheduler(client, daemon, sleep_s=5.0):
    """Park a sleeper probe in the engine so later submissions queue."""
    job_id = client.submit(_probe("plug", sleep_s=sleep_s,
                                  nonce="plug"))["job_id"]
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        if client.health()["running"] >= 1:
            return job_id
        time.sleep(0.02)
    raise AssertionError("sleeper never started running")


class TestAdmissionControl:
    def test_queue_full_with_retry_after(self, daemon_factory):
        daemon = daemon_factory(batch_max=1, max_queue=2)
        client = _client(daemon, retries=0)
        _occupy_scheduler(client, daemon, sleep_s=3.0)
        client.submit(_probe(1))
        client.submit(_probe(2))
        with pytest.raises(QueueFull) as exc:
            client.submit(_probe(3))
        assert exc.value.code == "queue-full"
        assert exc.value.retry_after and exc.value.retry_after > 0
        # the daemon stays responsive while saturated:
        health = client.health()
        assert health["queue_depth"] == 2
        assert health["counters"]["service.rejected.queue-full"] == 1

    def test_client_limit_is_per_client(self, daemon_factory):
        daemon = daemon_factory(batch_max=1, per_client=1, max_queue=8)
        alice = _client(daemon, retries=0, client_id="alice")
        bob = _client(daemon, retries=0, client_id="bob")
        _occupy_scheduler(alice, daemon, sleep_s=3.0)
        with pytest.raises(QueueFull) as exc:
            alice.submit(_probe(1))
        assert exc.value.code == "client-limit"
        # a different client is unaffected by alice's cap:
        assert bob.submit(_probe(2))["ok"] is True

    def test_client_retry_rides_out_backpressure(self, daemon_factory):
        """The client's bounded backoff turns a transient queue-full
        into a success instead of an error."""
        daemon = daemon_factory(batch_max=1, max_queue=1)
        patient = _client(daemon, retries=8, backoff=0.05,
                          client_id="patient")
        _occupy_scheduler(patient, daemon, sleep_s=0.5)
        patient.submit(_probe(1))  # fills the queue
        reply = patient.submit(_probe(2))  # retried until admitted
        assert reply["ok"] is True

    def test_shutting_down_rejects_submissions(self, daemon_factory):
        daemon = daemon_factory()
        client = _client(daemon, retries=0)
        client.drain()
        with pytest.raises(ServiceError) as exc:
            client.submit(_probe(9))
        assert exc.value.code == "shutting-down"

    def test_drain_finishes_queued_work(self, daemon_factory):
        daemon = daemon_factory(batch_max=1)
        client = _client(daemon)
        ids = [client.submit(_probe(i, nonce="drain"))["job_id"]
               for i in range(3)]
        client.drain()
        assert daemon.wait(30), "drain did not stop the daemon"
        for job_id in ids:
            assert daemon._jobs[job_id].state == "done"

    def test_second_daemon_refused(self, daemon_factory, tmp_path):
        daemon_factory(state_dir=tmp_path / "shared")
        second = ExperimentDaemon(tmp_path / "shared")
        with pytest.raises(ServiceError) as exc:
            second.start()
        assert exc.value.code == "already-running"


# -- journal + resume --------------------------------------------------------

class TestResume:
    def test_stop_leaves_queued_jobs_journalled(self, daemon_factory,
                                                tmp_path):
        state = tmp_path / "state"
        daemon = daemon_factory(state_dir=state, batch_max=1)
        client = _client(daemon)
        _occupy_scheduler(client, daemon, sleep_s=1.0)
        queued = [client.submit(_probe(i, nonce="resume"))["job_id"]
                  for i in range(3)]
        daemon.request_stop()
        assert daemon.wait(30)
        # graceful stop ran only the in-flight batch; the queued jobs
        # survive in the journal...
        records = Journal(state / "journal.jsonl").replay()
        journalled = {r["id"] for r in records if r["t"] == "accepted"}
        assert set(queued) <= journalled
        # ...and --resume runs them to completion.
        revived = daemon_factory(state_dir=state, resume=True,
                                 batch_max=1)
        client2 = _client(revived, retries=5)
        for i, job_id in enumerate(queued):
            result = client2.wait(job_id, timeout=60)
            assert result["state"] == "done"
            assert result["value"] == {"value": i}

    def test_resume_skips_done_work_via_cache(self, daemon_factory,
                                              tmp_path):
        state = tmp_path / "state"
        daemon = daemon_factory(state_dir=state)
        client = _client(daemon)
        job_id = client.submit(_probe(5))["job_id"]
        client.wait(job_id, timeout=30)
        daemon.request_stop()
        assert daemon.wait(30)
        revived = daemon_factory(state_dir=state, resume=True)
        client2 = _client(revived)
        result = client2.wait(job_id, timeout=30)
        assert result["value"] == {"value": 5}
        assert revived.engine.stats.executed == 0  # nothing re-ran

    def test_resume_tolerates_torn_journal_tail(self, daemon_factory,
                                                tmp_path):
        state = tmp_path / "state"
        daemon = daemon_factory(state_dir=state, batch_max=1)
        client = _client(daemon)
        _occupy_scheduler(client, daemon, sleep_s=1.0)
        job_id = client.submit(_probe(3, nonce="torn"))["job_id"]
        daemon.request_stop()
        assert daemon.wait(30)
        with open(state / "journal.jsonl", "a") as fh:
            fh.write('{"t": "accepted", "id": "j9')  # crash mid-append
        revived = daemon_factory(state_dir=state, resume=True)
        assert revived.profiler.counters[
            "service.journal.torn_lines"] == 1
        result = _client(revived, retries=5).wait(job_id, timeout=60)
        assert result["value"] == {"value": 3}

    def test_done_record_with_lost_cache_entry_reruns(self, tmp_path):
        state = tmp_path / "state"
        daemon = ExperimentDaemon(state)
        try:
            daemon.start()
            client = _client(daemon)
            job_id = client.submit(_probe(11))["job_id"]
            client.wait(job_id, timeout=30)
        finally:
            daemon.request_stop()
            assert daemon.wait(30)
        daemon.cache.clear()  # the at-most-once half vanished
        revived = ExperimentDaemon(state, resume=True)
        try:
            revived.start()
            result = _client(revived, retries=5).wait(job_id,
                                                      timeout=60)
            assert result["value"] == {"value": 11}
            assert revived.engine.stats.executed == 1  # really re-ran
        finally:
            revived.request_stop()
            assert revived.wait(30)

    def test_journal_compaction_is_atomic_image(self, daemon_factory,
                                                tmp_path):
        state = tmp_path / "state"
        daemon = daemon_factory(state_dir=state)
        client = _client(daemon)
        for i in range(5):
            client.wait(client.submit(_probe(i))["job_id"], timeout=30)
        daemon.request_stop()
        assert daemon.wait(30)
        # after the shutdown compaction every accepted job has its
        # done record and no temp file lingers
        records = Journal(state / "journal.jsonl").replay()
        accepted = {r["id"] for r in records if r["t"] == "accepted"}
        done = {r["id"] for r in records if r["t"] == "done"}
        assert accepted == done and len(accepted) == 5
        assert not list(state.glob("*.tmp"))


# -- fault injection through the service -------------------------------------

class TestServiceFaults:
    def test_injected_fault_is_retried_through_service(
            self, daemon_factory, monkeypatch, tmp_path):
        monkeypatch.setenv(FAULT_PLAN_ENV, "raise:service#0:1")
        monkeypatch.setenv(FAULT_STATE_ENV,
                           str(tmp_path / "fault-state"))
        daemon = daemon_factory(retries=1)
        client = _client(daemon)
        job_id = client.submit(_probe(13))["job_id"]
        result = client.wait(job_id, timeout=30)
        assert result["state"] == "done"
        assert result["value"] == {"value": 13}
        assert daemon.engine.stats.retried == 1

    def test_injected_fault_exhausting_retries_fails_job(
            self, daemon_factory, monkeypatch, tmp_path):
        monkeypatch.setenv(FAULT_PLAN_ENV, "raise:service#0:5")
        monkeypatch.setenv(FAULT_STATE_ENV,
                           str(tmp_path / "fault-state"))
        daemon = daemon_factory(retries=1)
        client = _client(daemon)
        job_id = client.submit(_probe(13))["job_id"]
        result = client.wait(job_id, timeout=30)
        assert result["state"] == "failed"
        assert result["failure"]["exc_type"] == "FaultInjected"


# -- crash recovery (subprocess, SIGKILL) ------------------------------------

def _spawn_serve(state_dir, *extra):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    env.pop(FAULT_PLAN_ENV, None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--state-dir", str(state_dir), "--jobs", "1", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    deadline = time.monotonic() + 30
    info = Path(state_dir) / "daemon.json"
    while time.monotonic() < deadline:
        if info.exists():
            return proc
        if proc.poll() is not None:
            raise AssertionError(
                f"serve exited early:\n{proc.stdout.read()}")
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("daemon.json never appeared")


CELLS = [{"kind": "fig7-cell", "benchmark": bench, "warps": w,
          "threads": t, "cores": 2, "n": 512}
         for bench in ("vecadd", "transpose")
         for (w, t) in ((2, 2), (2, 4))]


class TestKillRecovery:
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        """THE acceptance test: SIGKILL the daemon mid-campaign, resume
        it, and the recovered campaign's results are byte-identical to
        running the same points serially in this process."""
        state = tmp_path / "state"
        proc = _spawn_serve(state, "--batch-max", "1")
        client = ServiceClient(state, retries=5, backoff=0.05)
        try:
            # a sleeper occupies the single-job scheduler so the fig7
            # cells are all still queued when we pull the trigger
            plug = client.submit(_probe("plug", sleep_s=8.0,
                                        nonce="kill-test"))
            ids = [client.submit(cell)["job_id"] for cell in CELLS]
            assert client.health()["queue_depth"] >= len(CELLS)
        finally:
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(30)
        # resume: only unfinished points re-run, then byte-compare
        proc = _spawn_serve(state, "--resume")
        try:
            client = ServiceClient(state, retries=8, backoff=0.05)
            recovered = {}
            for cell, job_id in zip(CELLS, ids):
                reply = client.wait(job_id, timeout=120)
                assert reply["state"] == "done", reply
                recovered[job_id] = reply["value"]
            from repro.harness.sweep import sweep_point
            from repro.vortex import VortexConfig

            for cell, job_id in zip(CELLS, ids):
                expected = sweep_point(
                    cell["benchmark"],
                    VortexConfig().with_geometry(
                        cores=cell["cores"], warps=cell["warps"],
                        threads=cell["threads"]),
                    cell["n"])
                assert (json.dumps(recovered[job_id], sort_keys=True)
                        == json.dumps(expected, sort_keys=True)), (
                    f"recovered result for {cell} diverged")
            client.drain()
            assert proc.wait(30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(30)

    @pytest.mark.slow
    def test_worker_kill_fault_plan_through_service_cli(self, tmp_path):
        """A kill-fault in a *worker* (not the daemon) is absorbed by
        the engine's retry/respawn machinery behind the service."""
        state = tmp_path / "state"
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        env[FAULT_PLAN_ENV] = "kill:service:1"
        env[FAULT_STATE_ENV] = str(tmp_path / "fault-state")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--state-dir", str(state), "--jobs", "2",
             "--retries", "1"],
            env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)
        try:
            deadline = time.monotonic() + 60
            info = state / "daemon.json"
            while not info.exists():
                assert time.monotonic() < deadline
                assert proc.poll() is None
                time.sleep(0.05)
            client = ServiceClient(state, retries=8, backoff=0.05)
            ids = [client.submit(_probe(i, nonce="chaos"))["job_id"]
                   for i in range(4)]
            for i, job_id in enumerate(ids):
                reply = client.wait(job_id, timeout=120)
                assert reply["state"] == "done"
                assert reply["value"] == {"value": i}
            client.drain()
            assert proc.wait(60) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(30)


# -- graceful CLI shutdown ---------------------------------------------------

class TestServeSignals:
    @pytest.mark.parametrize("signum",
                             [signal.SIGINT, signal.SIGTERM])
    def test_signal_exits_130_without_traceback(self, tmp_path, signum):
        state = tmp_path / "state"
        proc = _spawn_serve(state)
        time.sleep(0.2)
        os.kill(proc.pid, signum)
        assert proc.wait(30) == 130
        output = proc.stdout.read()
        assert "Traceback" not in output
        # graceful exit removed the discovery file
        assert not (state / "daemon.json").exists()
