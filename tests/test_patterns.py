"""Tests for the reusable kernel patterns: every factory's output runs
on the reference interpreter, the Vortex simulator and (where the flow
supports it) the HLS model, and matches numpy."""

import numpy as np
import pytest

from repro.errors import IRError, SynthesisError
from repro.hls import HLSBackend, STRATIX10_MX2100, STRATIX10_SX2800
from repro.ocl import Context, FLOAT32, INT32, ReferenceBackend, validate
from repro.ocl.patterns import (
    build_gather_kernel,
    build_histogram_kernel,
    build_inclusive_scan_kernel,
    build_map_kernel,
    build_reduction_kernel,
    build_scatter_kernel,
)
from repro.vortex import VortexBackend, VortexConfig

BACKENDS = [
    ReferenceBackend(),
    VortexBackend(VortexConfig(cores=2, warps=4, threads=4)),
    HLSBackend(device=STRATIX10_SX2800),
]


@pytest.mark.parametrize("backend", BACKENDS, ids=lambda b: b.name)
class TestOnAllBackends:
    def test_map(self, backend):
        kernel = build_map_kernel(
            "clip01", FLOAT32,
            lambda b, v: b.min(b.max(v, b.const(0.0)), b.const(1.0)),
        )
        validate(kernel)
        ctx = Context(backend)
        prog = ctx.program([kernel])
        rng = np.random.default_rng(0)
        data = (rng.random(64, dtype=np.float32) * 3 - 1).astype(np.float32)
        src = ctx.buffer(data)
        dst = ctx.alloc(64)
        prog.launch("clip01", [src, dst, 64], 64, 8)
        np.testing.assert_allclose(dst.read(), np.clip(data, 0, 1))

    def test_sum_reduction(self, backend):
        kernel = build_reduction_kernel(
            "sum8", INT32, lambda b, x, y: b.add(x, y), identity=0,
            group_size=8,
        )
        ctx = Context(backend)
        prog = ctx.program([kernel])
        data = np.arange(64, dtype=np.int32)
        src = ctx.buffer(data)
        partials = ctx.alloc(8, np.int32)
        prog.launch("sum8", [src, partials, 64], 64, 8)
        np.testing.assert_array_equal(
            partials.read(), data.reshape(8, 8).sum(axis=1))

    def test_max_reduction(self, backend):
        kernel = build_reduction_kernel(
            "max8", INT32, lambda b, x, y: b.max(x, y),
            identity=-(2**31), group_size=8,
        )
        ctx = Context(backend)
        prog = ctx.program([kernel])
        rng = np.random.default_rng(1)
        data = rng.integers(-1000, 1000, 64).astype(np.int32)
        src = ctx.buffer(data)
        partials = ctx.alloc(8, np.int32)
        prog.launch("max8", [src, partials, 64], 64, 8)
        np.testing.assert_array_equal(
            partials.read(), data.reshape(8, 8).max(axis=1))

    def test_inclusive_scan(self, backend):
        kernel = build_inclusive_scan_kernel("scan8", INT32, group_size=8)
        ctx = Context(backend)
        prog = ctx.program([kernel])
        rng = np.random.default_rng(2)
        data = rng.integers(0, 10, 32).astype(np.int32)
        src = ctx.buffer(data)
        dst = ctx.alloc(32, np.int32)
        prog.launch("scan8", [src, dst, 32], 32, 8)
        expected = data.reshape(4, 8).cumsum(axis=1).reshape(-1)
        np.testing.assert_array_equal(dst.read(), expected)

    def test_gather(self, backend):
        kernel = build_gather_kernel("gath", FLOAT32)
        ctx = Context(backend)
        prog = ctx.program([kernel])
        rng = np.random.default_rng(3)
        index = rng.permutation(32).astype(np.int32)
        data = rng.random(32, dtype=np.float32)
        out = ctx.alloc(32)
        prog.launch("gath", [ctx.buffer(index), ctx.buffer(data), out, 32],
                    32, 8)
        np.testing.assert_array_equal(out.read(), data[index])

    def test_scatter(self, backend):
        kernel = build_scatter_kernel("scat", INT32)
        ctx = Context(backend)
        prog = ctx.program([kernel])
        rng = np.random.default_rng(4)
        index = rng.permutation(32).astype(np.int32)
        data = np.arange(32, dtype=np.int32)
        out = ctx.alloc(32, np.int32)
        prog.launch("scat", [ctx.buffer(index), ctx.buffer(data), out, 32],
                    32, 8)
        expected = np.zeros(32, dtype=np.int32)
        expected[index] = data
        np.testing.assert_array_equal(out.read(), expected)


class TestHistogram:
    def test_on_vortex(self):
        kernel = build_histogram_kernel()
        ctx = Context(VortexBackend(VortexConfig(cores=2, warps=4,
                                                 threads=4)))
        prog = ctx.program([kernel])
        rng = np.random.default_rng(5)
        vals = rng.integers(0, 8, 128).astype(np.int32)
        bins = ctx.alloc(8, np.int32)
        prog.launch("histogram", [ctx.buffer(vals), bins, 128, 8], 128, 8)
        np.testing.assert_array_equal(bins.read(),
                                      np.bincount(vals, minlength=8))

    def test_fails_hls_on_hbm_board(self):
        # The pattern reproduces the hybridsort failure by construction.
        kernel = build_histogram_kernel()
        with pytest.raises(SynthesisError) as exc:
            Context(HLSBackend(device=STRATIX10_MX2100)).program([kernel])
        assert exc.value.reason == "atomics"


class TestValidation:
    def test_non_power_of_two_group_rejected(self):
        with pytest.raises(IRError, match="power of two"):
            build_reduction_kernel("bad", INT32,
                                   lambda b, x, y: b.add(x, y), 0,
                                   group_size=6)
        with pytest.raises(IRError, match="power of two"):
            build_inclusive_scan_kernel("bad", INT32, group_size=12)

    def test_all_factories_validate(self):
        for kernel in (
            build_map_kernel("m", INT32, lambda b, v: b.add(v, 1)),
            build_reduction_kernel("r", FLOAT32,
                                   lambda b, x, y: b.add(x, y), 0.0),
            build_histogram_kernel(),
            build_inclusive_scan_kernel("s", FLOAT32),
            build_gather_kernel("g", INT32),
            build_scatter_kernel("sc", FLOAT32),
        ):
            validate(kernel)
